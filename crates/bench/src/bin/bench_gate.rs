//! The CI bench-regression gate.
//!
//! Reads the *committed* `BENCH_exec.json` / `BENCH_serve.json` baselines,
//! re-runs the smoke benches (which rewrite those files in the working
//! tree), and compares the key **ratios** — pipelined-vs-sequential
//! speedups, the shared-super-plan multi-query speedup, and the
//! shared-batcher-vs-per-stream scaling speedups per stream count —
//! against the committed values within a tolerance. One absolute metric
//! rides along: the sharded supervisor's delivered fps at 64 paced
//! streams on 4 shards, which the pacing schedule pins to a
//! machine-independent ceiling. Ratios, not absolute
//! fps: under the virtual-latency clock the serving speedups are
//! dominated by device sleeps and are near machine-independent; the
//! pipelined-vs-sequential exec speedups also contain real host work
//! (decode) and therefore *rise* with core count. The check is one-sided
//! (fail only below the floor) and the committed baselines are generated
//! on a deliberately modest 1-core container, so a beefier CI runner
//! biases toward passing — regenerate the baselines from the CI
//! artifact, not from a fast dev machine, or the floor loses meaning.
//! Exits nonzero on regression so CI fails the job; the freshly
//! generated JSON is left in the working tree for upload as a workflow
//! artifact. A missing or malformed baseline file/section is flagged
//! with a clear warning and skipped rather than panicking — the gate
//! only hard-fails when *no* committed metric is left to compare.
//!
//! Usage: `cargo run --release -p vqpy-bench --bin bench_gate --
//! [--tolerance 0.15] [--skip-run]`. The bench scale is taken from
//! `VQPY_BENCH_SCALE` (defaulting to the committed baselines' 0.2) and
//! passed through to the bench subprocesses — gate and baselines must run
//! at the same scale for ratios to be comparable.

use std::path::{Path, PathBuf};
use std::process::Command;
use vqpy_bench::json::Json;

/// One gated ratio extracted from a report file.
struct Metric {
    name: String,
    value: f64,
}

struct Comparison {
    name: String,
    committed: f64,
    fresh: f64,
    floor: f64,
    ok: bool,
}

/// Every warn/skip names exactly where in which report it came from —
/// `[ctx file :: section.key]` — so a CI log line is actionable without
/// opening the JSON.
fn warn_skip(ctx: &str, file: &str, section_key: &str, why: &str) {
    eprintln!("bench_gate: WARNING: [{ctx} {file} :: {section_key}] {why}");
}

/// Reads and parses one report. A missing or malformed file is flagged
/// loudly but does not abort the gate: the remaining reports' metrics are
/// still compared (and an empty committed set fails cleanly in `main`).
fn read_json(path: &Path, ctx: &str) -> Option<Json> {
    let file = path
        .file_name()
        .map(|f| f.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.display().to_string());
    let doc = match std::fs::read_to_string(path) {
        Ok(doc) => doc,
        Err(e) => {
            warn_skip(
                ctx,
                &file,
                "<whole file>",
                &format!(
                    "unreadable ({e}); all of its metrics are skipped — \
                     regenerate the report and commit it to restore gate coverage"
                ),
            );
            return None;
        }
    };
    let parsed = Json::parse(&doc);
    if parsed.is_none() {
        warn_skip(
            ctx,
            &file,
            "<whole file>",
            "malformed JSON; all of its metrics are skipped — regenerate the \
             report and commit it",
        );
    }
    parsed
}

/// Pipelined-vs-sequential speedups per query from `BENCH_exec.json`.
fn exec_metrics(doc: &Json, ctx: &str) -> Vec<Metric> {
    let mut out = Vec::new();
    match doc.path("queries").and_then(Json::as_arr) {
        Some(queries) => {
            for (i, q) in queries.iter().enumerate() {
                match (
                    q.get("query").and_then(Json::as_str),
                    q.get("speedup").and_then(Json::as_f64),
                ) {
                    (Some(name), Some(speedup)) => out.push(Metric {
                        name: format!("exec.pipelined_speedup.{name}"),
                        value: speedup,
                    }),
                    (name, _) => {
                        let missing = if name.is_none() {
                            format!("queries[{i}].query")
                        } else {
                            format!("queries[{i}].speedup")
                        };
                        warn_skip(
                            ctx,
                            "BENCH_exec.json",
                            &missing,
                            "key missing or wrong type; this row's exec speedup \
                             is not gated this run",
                        );
                    }
                }
            }
        }
        None => warn_skip(
            ctx,
            "BENCH_exec.json",
            "queries",
            "section missing; exec speedups are not gated this run",
        ),
    }
    out
}

/// Multi-query and multi-stream scaling speedups from `BENCH_serve.json`.
fn serve_metrics(doc: &Json, ctx: &str) -> Vec<Metric> {
    let mut out = Vec::new();
    match doc.path("multiquery.speedup").and_then(Json::as_f64) {
        Some(speedup) => out.push(Metric {
            name: "serve.multiquery_speedup".into(),
            value: speedup,
        }),
        None => warn_skip(
            ctx,
            "BENCH_serve.json",
            "multiquery.speedup",
            "key missing; the multi-query ratio is not gated this run",
        ),
    }
    // The backfill ratio (stored-replay fps over live-decode fps) joined
    // the report after the other sections: a committed baseline that
    // predates it merely warns — the gate must not fail repos whose
    // baseline was generated before the frame store existed.
    match doc.path("backfill.speedup").and_then(Json::as_f64) {
        Some(speedup) => out.push(Metric {
            name: "serve.backfill_speedup".into(),
            value: speedup,
        }),
        None => warn_skip(
            ctx,
            "BENCH_serve.json",
            "backfill.speedup",
            "key missing (baseline predates the frame store?); the \
             stored-replay ratio is not gated this run — regenerate with \
             `cargo bench -p vqpy-bench --bench backfill` and commit",
        ),
    }
    // Device-scaling speedups (devices=1 vs n under `DeviceModel::Devices`)
    // joined the report with the placement work: a committed baseline
    // without the section merely warns, it never fails the gate.
    match doc.path("device_scale.table").and_then(Json::as_arr) {
        Some(rows) => {
            for (i, row) in rows.iter().enumerate() {
                match (
                    row.get("devices").and_then(Json::as_f64),
                    row.get("speedup").and_then(Json::as_f64),
                ) {
                    (Some(devices), Some(speedup)) => {
                        // devices=1 is the ratio's own denominator (1.0x
                        // by construction) — report-only.
                        if devices as u64 > 1 {
                            out.push(Metric {
                                name: format!(
                                    "serve.device_scale_speedup.{}_devices",
                                    devices as u64
                                ),
                                value: speedup,
                            });
                        }
                    }
                    (devices, _) => {
                        let missing = if devices.is_none() {
                            format!("device_scale.table[{i}].devices")
                        } else {
                            format!("device_scale.table[{i}].speedup")
                        };
                        warn_skip(
                            ctx,
                            "BENCH_serve.json",
                            &missing,
                            "key missing or wrong type; this row's device \
                             scaling is not gated this run",
                        );
                    }
                }
            }
        }
        None => warn_skip(
            ctx,
            "BENCH_serve.json",
            "device_scale.table",
            "section missing (baseline predates device placement?); device \
             scaling is not gated this run — regenerate with `cargo bench -p \
             vqpy-bench --bench device_scale` and commit",
        ),
    }
    match doc.path("scaling.table").and_then(Json::as_arr) {
        Some(rows) => {
            for row in rows {
                if let (Some(streams), Some(speedup)) = (
                    row.get("streams").and_then(Json::as_f64),
                    row.get("speedup").and_then(Json::as_f64),
                ) {
                    out.push(Metric {
                        name: format!("serve.scaling_speedup.{}_streams", streams as u64),
                        value: speedup,
                    });
                }
                // Sharded occupancy rows carry no speedup ratio; gate the
                // smallest one's delivered fps instead — at 64 paced
                // streams the event loop runs well under the pace ceiling,
                // so delivered fps is pinned by the pacing schedule and is
                // stable across machines. The larger rows (256/1024) may
                // be host-bound and stay report-only.
                if let (Some(streams), Some(shards), Some(fps)) = (
                    row.get("streams").and_then(Json::as_f64),
                    row.get("shards").and_then(Json::as_f64),
                    row.get("delivered_fps").and_then(Json::as_f64),
                ) {
                    if streams as u64 == 64 {
                        out.push(Metric {
                            name: format!(
                                "serve.sharded_delivered_fps.{}x{}",
                                streams as u64, shards as u64
                            ),
                            value: fps,
                        });
                    }
                }
            }
        }
        None => warn_skip(
            ctx,
            "BENCH_serve.json",
            "scaling.table",
            "section missing; stream-scaling ratios are not gated this run",
        ),
    }
    out
}

/// Telemetry nudge, warn-only: current bench runs embed latency-percentile
/// objects (`frame_latency_ms` inside each query's sequential exec metrics,
/// `latency_ms` inside each scaling row). A committed baseline without them
/// simply predates the telemetry work — percentiles are reported, not
/// ratio-gated, so their absence never fails the gate, but it is worth a
/// loud reminder to regenerate the baseline and pick them up.
fn warn_missing_percentiles(exec: Option<&Json>, serve: Option<&Json>) {
    let exec_has = exec.is_none_or(|doc| {
        doc.path("queries").and_then(Json::as_arr).is_none_or(|qs| {
            qs.iter().all(|q| {
                q.get("sequential_exec")
                    .and_then(|e| e.get("frame_latency_ms"))
                    .is_some()
            })
        })
    });
    if !exec_has {
        warn_skip(
            "committed",
            "BENCH_exec.json",
            "queries[*].sequential_exec.frame_latency_ms",
            "percentile objects missing; regenerate with `cargo bench -p \
             vqpy-bench --bench throughput` to record per-frame p50/p95/p99",
        );
    }
    // Only the batcher-comparison rows (the ones carrying a speedup)
    // record delivery percentiles; sharded occupancy rows do not.
    let serve_has = serve.is_none_or(|doc| {
        doc.path("scaling.table")
            .and_then(Json::as_arr)
            .is_none_or(|rows| {
                rows.iter()
                    .filter(|r| r.get("speedup").is_some())
                    .all(|r| r.get("latency_ms").is_some())
            })
    });
    if !serve_has {
        warn_skip(
            "committed",
            "BENCH_serve.json",
            "scaling.table[*].latency_ms",
            "percentile objects missing; regenerate with `cargo bench -p \
             vqpy-bench --bench serve_scale` to record delivery p50/p95/p99",
        );
    }
}

fn collect(root: &Path, ctx: &str) -> Vec<Metric> {
    let mut metrics = Vec::new();
    let exec_doc = read_json(&root.join("BENCH_exec.json"), ctx);
    let serve_doc = read_json(&root.join("BENCH_serve.json"), ctx);
    if ctx == "committed" {
        warn_missing_percentiles(exec_doc.as_ref(), serve_doc.as_ref());
    }
    if let Some(doc) = exec_doc {
        metrics.extend(exec_metrics(&doc, ctx));
    }
    if let Some(doc) = serve_doc {
        metrics.extend(serve_metrics(&doc, ctx));
    }
    metrics
}

fn run_bench(root: &Path, bench: &str, scale: &str) {
    println!("\n=== bench_gate: running {bench} (scale {scale}) ===");
    let status = Command::new(std::env::var("CARGO").unwrap_or_else(|_| "cargo".into()))
        .current_dir(root)
        .args(["bench", "-p", "vqpy-bench", "--bench", bench])
        .env("VQPY_BENCH_SCALE", scale)
        .status()
        .unwrap_or_else(|e| panic!("spawn cargo bench {bench}: {e}"));
    assert!(status.success(), "bench {bench} failed");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut tolerance = 0.15f64;
    let mut skip_run = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                tolerance = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .expect("--tolerance takes a number");
            }
            "--skip-run" => skip_run = true,
            other => panic!("unknown argument {other}"),
        }
        i += 1;
    }
    let scale = std::env::var("VQPY_BENCH_SCALE").unwrap_or_else(|_| "0.2".into());
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");

    // Committed baselines first — the bench runs rewrite these files.
    let committed = collect(&root, "committed");
    if committed.is_empty() {
        eprintln!(
            "bench_gate: no gated metrics found in the committed BENCH_*.json \
             baselines (see warnings above). Regenerate them with \
             `cargo bench -p vqpy-bench` at VQPY_BENCH_SCALE={scale} and \
             commit the result; the gate cannot pass without a baseline."
        );
        std::process::exit(1);
    }

    if !skip_run {
        for bench in [
            "throughput",
            "serve",
            "serve_scale",
            "backfill",
            "device_scale",
        ] {
            run_bench(&root, bench, &scale);
        }
    }

    // Fresh numbers, same extraction.
    let fresh: Vec<Metric> = collect(&root, "fresh");
    let mut comparisons: Vec<Comparison> = Vec::new();
    for m in &committed {
        let floor = m.value * (1.0 - tolerance);
        let (fresh_value, ok) = match fresh.iter().find(|f| f.name == m.name) {
            Some(f) => (f.value, f.value >= floor),
            None => (f64::NAN, false), // metric vanished from the report
        };
        comparisons.push(Comparison {
            name: m.name.clone(),
            committed: m.value,
            fresh: fresh_value,
            floor,
            ok,
        });
    }

    println!(
        "\n=== bench_gate: ratio comparison (tolerance -{:.0}%) ===",
        tolerance * 100.0
    );
    println!(
        "{:<42} {:>10} {:>10} {:>10}  verdict",
        "metric", "committed", "fresh", "floor"
    );
    let mut failed = false;
    for c in &comparisons {
        println!(
            "{:<42} {:>9.3}x {:>9.3}x {:>9.3}x  {}",
            c.name,
            c.committed,
            c.fresh,
            c.floor,
            if c.ok { "ok" } else { "REGRESSION" }
        );
        failed |= !c.ok;
    }
    if failed {
        eprintln!("\nbench_gate: performance regression against committed BENCH_*.json");
        std::process::exit(1);
    }
    println!("\nbench_gate: all ratios within tolerance");
}
