//! # vqpy-bench
//!
//! Shared experiment harness for the benches that regenerate every table
//! and figure of the paper's evaluation (§5). Each bench target under
//! `benches/` prints the paper's rows/series next to the measured
//! reproduction; this library provides the common workloads, query
//! constructors, and table formatting.

pub mod json;
pub mod report;
pub mod workloads;

/// Reads an experiment scale factor from `VQPY_BENCH_SCALE`.
/// Video durations are the paper's clip lengths times this factor. The
/// default of 0.2 keeps a full `cargo bench --workspace` pass to a few
/// minutes; set `VQPY_BENCH_SCALE=1` to run the paper's full lengths.
pub fn bench_scale() -> f64 {
    std::env::var("VQPY_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|s| *s > 0.0)
        .unwrap_or(0.2)
}
