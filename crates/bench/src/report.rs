//! Plain-text table/series printing for experiment reports.

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints an aligned table: `headers` then `rows` (stringified cells).
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "{:<width$}  ",
                c,
                width = widths[i.min(widths.len() - 1)]
            ));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a speedup like the paper's figure annotations, e.g. `3.4x`.
pub fn speedup(baseline: f64, this: f64) -> String {
    if this <= 0.0 {
        return "inf".to_owned();
    }
    format!("{:.1}x", baseline / this)
}

/// Formats milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.1}s", v / 1000.0)
    } else {
        format!("{v:.1}ms")
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_formats() {
        assert_eq!(speedup(100.0, 10.0), "10.0x");
        assert_eq!(speedup(100.0, 0.0), "inf");
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn ms_scales() {
        assert_eq!(ms(10.0), "10.0ms");
        assert_eq!(ms(2500.0), "2.5s");
    }
}
