//! Plain-text table/series printing and JSON snippets for experiment
//! reports (`BENCH_*.json` files at the workspace root).

use vqpy_core::ExecMetrics;

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Exact latency percentiles of a sample set, `(p50, p95, p99, max)`.
///
/// Uses the same rank convention as the obs crate's histogram —
/// `rank = clamp(ceil(q·n), 1, n)` over the sorted samples — so bench JSON
/// and Prometheus snapshots of the same run quote comparable quantiles.
/// Returns zeros for empty input.
pub fn percentiles(samples: &[f64]) -> (f64, f64, f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0, 0.0, 0.0);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let pick = |q: f64| {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    };
    (pick(0.50), pick(0.95), pick(0.99), sorted[sorted.len() - 1])
}

/// Renders a `(p50, p95, p99, max)` tuple as an inline JSON object.
pub fn percentiles_json(p: (f64, f64, f64, f64)) -> String {
    format!(
        "{{\"p50\": {:.3}, \"p95\": {:.3}, \"p99\": {:.3}, \"max\": {:.3}}}",
        p.0, p.1, p.2, p.3
    )
}

/// Renders execution metrics as a JSON object (indented by `indent`
/// spaces): frame counts, reuse-cache counters and hit rate, per-stage
/// wall times, per-frame latency percentiles (when the run recorded them
/// via `ExecConfig::record_per_frame_ms`), and the one-line
/// [`ExecMetrics::summary`] string, so bench JSON records the cache and
/// stage behavior behind each throughput number.
pub fn exec_metrics_json(m: &ExecMetrics, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let inner = " ".repeat(indent + 2);
    let stages: Vec<String> = m
        .stage_wall_ms
        .iter()
        .map(|(n, ms)| format!("{inner}  \"{}\": {ms:.2}", json_escape(n)))
        .collect();
    let stages_block = if stages.is_empty() {
        "{}".to_owned()
    } else {
        format!("{{\n{}\n{inner}}}", stages.join(",\n"))
    };
    let latency = if m.per_frame_ms.is_empty() {
        String::new()
    } else {
        format!(
            "{inner}\"frame_latency_ms\": {},\n",
            percentiles_json(percentiles(&m.per_frame_ms))
        )
    };
    format!(
        "{{\n{inner}\"frames_total\": {},\n{inner}\"frames_processed\": {},\n\
         {inner}\"reuse_hits\": {},\n{inner}\"reuse_misses\": {},\n\
         {inner}\"reuse_evictions\": {},\n{inner}\"reuse_hit_rate\": {:.4},\n\
         {inner}\"stage_wall_ms\": {stages_block},\n{latency}{inner}\"summary\": \"{}\"\n{pad}}}",
        m.frames_total,
        m.frames_processed,
        m.reuse.hits,
        m.reuse.misses,
        m.reuse.evictions,
        m.reuse.hit_rate(),
        json_escape(&m.summary()),
    )
}

/// Updates one top-level section of a `BENCH_*.json` file in place,
/// leaving the other sections untouched, so independent bench binaries can
/// co-own a report file (e.g. the multi-query serve bench and the
/// multi-stream scaling bench both write `BENCH_serve.json`).
///
/// The file is a single JSON object whose top-level values are written by
/// this function (one `"name": value` per section). `value` must itself be
/// valid JSON. Unparseable files — and legacy single-bench files, whose
/// top-level values are scalars rather than section objects — are
/// replaced by a fresh single-section object.
pub fn merge_section(path: &std::path::Path, name: &str, value: &str) {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut sections = parse_top_level(&existing)
        .filter(|s| {
            s.iter()
                .all(|(_, v)| v.starts_with('{') || v.starts_with('['))
        })
        .unwrap_or_default();
    match sections.iter_mut().find(|(n, _)| n == name) {
        Some((_, v)) => *v = value.trim().to_owned(),
        None => sections.push((name.to_owned(), value.trim().to_owned())),
    }
    let body: Vec<String> = sections
        .iter()
        .map(|(n, v)| format!("  \"{}\": {}", json_escape(n), v))
        .collect();
    let doc = format!("{{\n{}\n}}\n", body.join(",\n"));
    std::fs::write(path, doc).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
}

/// Splits a JSON object document into its top-level `(key, raw value)`
/// pairs. Returns `None` when the document is not an object (or is
/// malformed), in which case the caller starts a fresh file. Handles
/// nested objects/arrays and strings with escapes; that is all our own
/// writers emit.
fn parse_top_level(doc: &str) -> Option<Vec<(String, String)>> {
    let bytes = doc.as_bytes();
    let mut i = doc.find('{')? + 1;
    let mut out = Vec::new();
    loop {
        // Seek the next key (a quoted string) or the closing brace.
        while i < bytes.len() && bytes[i] != b'"' && bytes[i] != b'}' {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] == b'}' {
            return Some(out);
        }
        let (key, after_key) = scan_string(doc, i)?;
        i = after_key;
        while i < bytes.len() && bytes[i] != b':' {
            i += 1;
        }
        i += 1; // past ':'
        while i < bytes.len() && (bytes[i] as char).is_whitespace() {
            i += 1;
        }
        let start = i;
        // Scan the value: balance braces/brackets outside strings.
        let mut depth = 0i32;
        while i < bytes.len() {
            match bytes[i] {
                b'"' => {
                    let (_, after) = scan_string(doc, i)?;
                    i = after;
                    continue;
                }
                b'{' | b'[' => depth += 1,
                b'}' | b']' => {
                    if depth == 0 {
                        break; // the object's closing brace
                    }
                    depth -= 1;
                }
                b',' if depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        out.push((key, doc[start..i].trim().to_owned()));
        if i < bytes.len() && bytes[i] == b',' {
            i += 1;
        }
    }
}

/// Scans the JSON string starting at `start` (which must index a `"`),
/// returning its unescaped-enough content (escapes kept verbatim) and the
/// index just past the closing quote.
fn scan_string(doc: &str, start: usize) -> Option<(String, usize)> {
    let bytes = doc.as_bytes();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some((doc[start + 1..i].to_owned(), i + 1)),
            _ => i += 1,
        }
    }
    None
}

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints an aligned table: `headers` then `rows` (stringified cells).
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "{:<width$}  ",
                c,
                width = widths[i.min(widths.len() - 1)]
            ));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a speedup like the paper's figure annotations, e.g. `3.4x`.
pub fn speedup(baseline: f64, this: f64) -> String {
    if this <= 0.0 {
        return "inf".to_owned();
    }
    format!("{:.1}x", baseline / this)
}

/// Formats milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.1}s", v / 1000.0)
    } else {
        format!("{v:.1}ms")
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_formats() {
        assert_eq!(speedup(100.0, 10.0), "10.0x");
        assert_eq!(speedup(100.0, 0.0), "inf");
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn ms_scales() {
        assert_eq!(ms(10.0), "10.0ms");
        assert_eq!(ms(2500.0), "2.5s");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn merge_section_coowns_a_file() {
        let dir = std::env::temp_dir().join(format!("vqpy_merge_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let _ = std::fs::remove_file(&path);

        merge_section(
            &path,
            "alpha",
            "{\n    \"x\": 1,\n    \"s\": \"a\\\"b}\"\n  }",
        );
        merge_section(&path, "beta", "[1, 2, 3]");
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(doc.contains("\"alpha\""), "{doc}");
        assert!(doc.contains("\"beta\": [1, 2, 3]"), "{doc}");

        // Updating one section preserves the other, byte-for-byte.
        merge_section(&path, "alpha", "{\n    \"x\": 2\n  }");
        let doc2 = std::fs::read_to_string(&path).unwrap();
        assert!(doc2.contains("\"x\": 2"), "{doc2}");
        assert!(doc2.contains("\"beta\": [1, 2, 3]"), "{doc2}");
        assert!(
            !doc2.contains("a\\\"b}"),
            "old alpha body must be gone: {doc2}"
        );

        // Merging is idempotent on untouched sections.
        merge_section(&path, "alpha", "{\n    \"x\": 2\n  }");
        assert_eq!(doc2, std::fs::read_to_string(&path).unwrap());

        let parsed = parse_top_level(&doc2).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[1], ("beta".to_owned(), "[1, 2, 3]".to_owned()));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn parse_top_level_rejects_non_objects() {
        assert!(parse_top_level("").is_none());
        assert_eq!(parse_top_level("{}"), Some(Vec::new()));
        let legacy = "{\n  \"bench\": \"x\",\n  \"n\": 3\n}";
        let parsed = parse_top_level(legacy).unwrap();
        assert_eq!(parsed[0], ("bench".to_owned(), "\"x\"".to_owned()));
        assert_eq!(parsed[1], ("n".to_owned(), "3".to_owned()));
    }

    #[test]
    fn merge_section_replaces_legacy_flat_files() {
        let dir = std::env::temp_dir().join(format!("vqpy_legacy_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_legacy.json");
        // Pre-sections flat format: scalar top-level values.
        std::fs::write(&path, "{\n  \"bench\": \"old\",\n  \"frames\": 80\n}").unwrap();
        merge_section(&path, "scaling", "{\n    \"x\": 1\n  }");
        let doc = std::fs::read_to_string(&path).unwrap();
        assert!(
            !doc.contains("\"bench\": \"old\"") && !doc.contains("\"frames\""),
            "legacy keys must be discarded, not merged into: {doc}"
        );
        assert!(doc.contains("\"scaling\""), "{doc}");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn exec_metrics_json_embeds_summary() {
        let mut m = ExecMetrics {
            frames_total: 10,
            frames_processed: 8,
            ..ExecMetrics::default()
        };
        m.reuse.hits = 6;
        m.reuse.misses = 2;
        m.add_stage_wall("decode", 1.5);
        let json = exec_metrics_json(&m, 2);
        assert!(json.contains("\"frames_total\": 10"), "{json}");
        assert!(json.contains("\"decode\": 1.50"), "{json}");
        assert!(json.contains("\"reuse_hit_rate\": 0.7500"), "{json}");
        assert!(json.contains("\"summary\""), "{json}");
        // No per-frame samples recorded: no latency block.
        assert!(!json.contains("frame_latency_ms"), "{json}");

        m.per_frame_ms = vec![3.0, 1.0, 2.0, 4.0];
        let json = exec_metrics_json(&m, 2);
        assert!(
            json.contains(
                "\"frame_latency_ms\": {\"p50\": 2.000, \"p95\": 4.000, \
                 \"p99\": 4.000, \"max\": 4.000}"
            ),
            "{json}"
        );
    }

    #[test]
    fn percentiles_use_ceil_rank() {
        assert_eq!(percentiles(&[]), (0.0, 0.0, 0.0, 0.0));
        assert_eq!(percentiles(&[7.0]), (7.0, 7.0, 7.0, 7.0));
        // 1..=100: rank(q) = ceil(q*100) → p50=50, p95=95, p99=99.
        let xs: Vec<f64> = (1..=100).rev().map(|i| i as f64).collect();
        assert_eq!(percentiles(&xs), (50.0, 95.0, 99.0, 100.0));
    }
}
