//! Plain-text table/series printing and JSON snippets for experiment
//! reports (`BENCH_*.json` files at the workspace root).

use vqpy_core::ExecMetrics;

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders execution metrics as a JSON object (indented by `indent`
/// spaces): frame counts, reuse-cache counters and hit rate, per-stage
/// wall times, and the one-line [`ExecMetrics::summary`] string, so bench
/// JSON records the cache and stage behavior behind each throughput
/// number.
pub fn exec_metrics_json(m: &ExecMetrics, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let inner = " ".repeat(indent + 2);
    let stages: Vec<String> = m
        .stage_wall_ms
        .iter()
        .map(|(n, ms)| format!("{inner}  \"{}\": {ms:.2}", json_escape(n)))
        .collect();
    let stages_block = if stages.is_empty() {
        "{}".to_owned()
    } else {
        format!("{{\n{}\n{inner}}}", stages.join(",\n"))
    };
    format!(
        "{{\n{inner}\"frames_total\": {},\n{inner}\"frames_processed\": {},\n\
         {inner}\"reuse_hits\": {},\n{inner}\"reuse_misses\": {},\n\
         {inner}\"reuse_evictions\": {},\n{inner}\"reuse_hit_rate\": {:.4},\n\
         {inner}\"stage_wall_ms\": {stages_block},\n{inner}\"summary\": \"{}\"\n{pad}}}",
        m.frames_total,
        m.frames_processed,
        m.reuse.hits,
        m.reuse.misses,
        m.reuse.evictions,
        m.reuse.hit_rate(),
        json_escape(&m.summary()),
    )
}

/// Prints a section header.
pub fn section(title: &str) {
    println!();
    println!("=== {title} ===");
}

/// Prints an aligned table: `headers` then `rows` (stringified cells).
pub fn table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: Vec<String>| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate() {
            out.push_str(&format!(
                "{:<width$}  ",
                c,
                width = widths[i.min(widths.len() - 1)]
            ));
        }
        println!("{}", out.trim_end());
    };
    line(headers.iter().map(|s| s.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Formats a speedup like the paper's figure annotations, e.g. `3.4x`.
pub fn speedup(baseline: f64, this: f64) -> String {
    if this <= 0.0 {
        return "inf".to_owned();
    }
    format!("{:.1}x", baseline / this)
}

/// Formats milliseconds with sensible precision.
pub fn ms(v: f64) -> String {
    if v >= 1000.0 {
        format!("{:.1}s", v / 1000.0)
    } else {
        format!("{v:.1}ms")
    }
}

/// Mean of a slice (0 for empty input).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_formats() {
        assert_eq!(speedup(100.0, 10.0), "10.0x");
        assert_eq!(speedup(100.0, 0.0), "inf");
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn ms_scales() {
        assert_eq!(ms(10.0), "10.0ms");
        assert_eq!(ms(2500.0), "2.5s");
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn exec_metrics_json_embeds_summary() {
        let mut m = ExecMetrics {
            frames_total: 10,
            frames_processed: 8,
            ..ExecMetrics::default()
        };
        m.reuse.hits = 6;
        m.reuse.misses = 2;
        m.add_stage_wall("decode", 1.5);
        let json = exec_metrics_json(&m, 2);
        assert!(json.contains("\"frames_total\": 10"), "{json}");
        assert!(json.contains("\"decode\": 1.50"), "{json}");
        assert!(json.contains("\"reuse_hit_rate\": 0.7500"), "{json}");
        assert!(json.contains("\"summary\""), "{json}");
    }
}
