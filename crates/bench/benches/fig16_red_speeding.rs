//! Figure 16: the red-speeding-car query (stateless + stateful), VQPy vs
//! EVA naive and EVA with hand-pushed-down filters ("EVA refined").
//!
//! Paper result: naive EVA is 7.5-15.2x slower than VQPy (single-statement
//! limit + no views force re-extraction); even the manually refined version
//! stays 3.3-5.7x slower because object-level memoization is inexpressible
//! in the tabular model.

use std::sync::Arc;
use vqpy_bench::bench_scale;
use vqpy_bench::report::{ms, section, speedup, table};
use vqpy_bench::workloads::{bench_zoo, camera_video, red_speeding_query};
use vqpy_core::VqpySession;
use vqpy_models::Clock;
use vqpy_sql::engine::Database;
use vqpy_sql::queries;
use vqpy_video::source::VideoSource;

fn main() {
    let scale = bench_scale();
    println!(
        "Figure 16 reproduction: red speeding car, VQPy vs EVA vs EVA-refined (scale {scale})"
    );
    for minutes in [3.0, 10.0] {
        let seconds = minutes * 60.0 * scale;
        let mut rows = Vec::new();
        for cam in ["banff", "jackson", "southampton"] {
            let video = camera_video(cam, seconds, 79);
            let threshold = video
                .scene()
                .unwrap()
                .preset
                .speeding_threshold_px_per_frame() as f64;

            let session = VqpySession::new(bench_zoo());
            let _ = session
                .execute(&red_speeding_query(threshold), &video)
                .expect("vqpy runs");
            let vqpy_ms = session.clock().virtual_ms();

            let arc_video = Arc::new(video) as Arc<dyn VideoSource>;
            let mut db = Database::new(bench_zoo());
            db.load_video("V", Arc::clone(&arc_video));
            let naive_clock = Clock::new();
            queries::red_speeding_query_naive(&mut db, "V", threshold, &naive_clock)
                .expect("eva naive runs");
            let naive_ms = naive_clock.virtual_ms();

            let refined_clock = Clock::new();
            queries::red_speeding_query_refined(&mut db, "V", threshold, &refined_clock)
                .expect("eva refined runs");
            let refined_ms = refined_clock.virtual_ms();

            rows.push(vec![
                cam.to_owned(),
                format!("{} ({})", ms(vqpy_ms), speedup(naive_ms, vqpy_ms)),
                format!("{} (1.0x)", ms(naive_ms)),
                format!("{} ({})", ms(refined_ms), speedup(naive_ms, refined_ms)),
                speedup(refined_ms, vqpy_ms),
            ]);
        }
        section(&format!("Figure 16: {minutes:.0}-min clips"));
        table(
            &["camera", "VQPy", "EVA", "EVA (refined)", "VQPy vs refined"],
            &rows,
        );
    }
    println!("\npaper: EVA 7.5-15.2x slower than VQPy; refined still 3.3-5.7x slower");
}
