//! Table 6: F-1 score of boolean queries, VideoChat vs VQPy, at clip level.
//!
//! Paper result: VQPy averages ~0.82 F1 across Q1, Q2, Q3, Q6 while
//! VideoChat-7B/13B land near 0.40/0.43; the positive-sample rate of each
//! question is reported because rare positives (Q6 at 4.9%) crater a noisy
//! answerer's F1.

use std::collections::BTreeSet;
use vqpy_baselines::{MllmQuestion, MllmVariant, VideoChatSim};
use vqpy_bench::bench_scale;
use vqpy_bench::report::{section, table};
use vqpy_bench::workloads::{auburn_queries, bench_zoo, camera_video, hit_ball_query};
use vqpy_core::scoring::f1_frames;
use vqpy_core::VqpySession;
use vqpy_models::Clock;
use vqpy_video::source::VideoSource;
use vqpy_video::SyntheticVideo;

/// Clip-level F1 from per-clip booleans.
fn clip_f1(pred: &[Option<bool>], truth: &[bool]) -> f64 {
    let pred_set: BTreeSet<u64> = pred
        .iter()
        .enumerate()
        .filter(|(_, p)| **p == Some(true))
        .map(|(i, _)| i as u64)
        .collect();
    let truth_set: BTreeSet<u64> = truth
        .iter()
        .enumerate()
        .filter(|(_, t)| **t)
        .map(|(i, _)| i as u64)
        .collect();
    f1_frames(&pred_set, &truth_set).f1
}

fn eval_question(
    video: &SyntheticVideo,
    question: &MllmQuestion,
    vqpy_hits: &BTreeSet<u64>,
    n_clips: u64,
) -> (f64, Vec<f64>) {
    let fps = video.fps() as u64;
    // Ground truth per clip.
    let mut truth = Vec::new();
    for c in 0..n_clips {
        let clip = video.clip(c as f64, (c + 1) as f64);
        let t = (0..clip.frame_count()).any(|f| question.truth_on(&clip.frame(f).truth));
        truth.push(t);
    }
    let positive_rate = truth.iter().filter(|t| **t).count() as f64 / truth.len() as f64;

    let mut f1s = Vec::new();
    for variant in [MllmVariant::VideoChat7B, MllmVariant::VideoChat13BLowRes] {
        let sim = VideoChatSim::new(variant, 17);
        let clock = Clock::new();
        let answers: Vec<Option<bool>> = (0..n_clips)
            .map(|c| sim.ask_bool(&video.clip(c as f64, (c + 1) as f64), question, &clock))
            .collect();
        f1s.push(clip_f1(&answers, &truth));
    }
    // VQPy: a clip is positive when any of its frames hit.
    let vqpy_answers: Vec<Option<bool>> = (0..n_clips)
        .map(|c| {
            let lo = c * fps;
            let hi = (c + 1) * fps;
            Some(vqpy_hits.range(lo..hi).next().is_some())
        })
        .collect();
    f1s.push(clip_f1(&vqpy_answers, &truth));
    (positive_rate, f1s)
}

fn main() {
    let scale = bench_scale();
    let seconds = 600.0 * scale;
    let video = camera_video("auburn", seconds, 2024);
    let scene = video.scene().unwrap().clone();
    let n_clips = seconds as u64 - 1;
    println!("Table 6 reproduction: {n_clips} one-second clips");

    let questions = [
        (
            "Q1",
            MllmQuestion::PeopleOnCrosswalk {
                region: scene.crosswalk_region(),
            },
        ),
        ("Q2", MllmQuestion::CarsTurningLeft),
        ("Q3", MllmQuestion::RedCarPresent),
    ];
    let vqpy_queries = auburn_queries(&scene);
    let session = VqpySession::new(bench_zoo());

    let mut rows = Vec::new();
    let mut sums = [0.0f64; 3];
    for (i, (label, q)) in questions.iter().enumerate() {
        let vqpy_hits = session
            .execute(&vqpy_queries[i].1, &video)
            .expect("vqpy runs")
            .hit_frame_set();
        let (pos, f1s) = eval_question(&video, q, &vqpy_hits, n_clips);
        for (k, f) in f1s.iter().enumerate() {
            sums[k] += f;
        }
        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", pos * 100.0),
            format!("{:.3}", f1s[0]),
            format!("{:.3}", f1s[1]),
            format!("{:.3}", f1s[2]),
        ]);
    }

    // Q6 on interaction clips.
    {
        let q6_video = SyntheticVideo::new(vqpy_video::Scene::generate(
            vqpy_video::presets::interaction_clips(),
            606,
            240.0 * scale,
        ));
        let q6_clips = (240.0 * scale) as u64 - 1;
        let q6_session = VqpySession::new(bench_zoo());
        let hits = q6_session
            .execute(&hit_ball_query(), &q6_video)
            .expect("q6 runs")
            .hit_frame_set();
        let (pos, f1s) = eval_question(&q6_video, &MllmQuestion::PersonHitsBall, &hits, q6_clips);
        for (k, f) in f1s.iter().enumerate() {
            sums[k] += f;
        }
        rows.push(vec![
            "Q6".into(),
            format!("{:.1}%", pos * 100.0),
            format!("{:.3}", f1s[0]),
            format!("{:.3}", f1s[1]),
            format!("{:.3}", f1s[2]),
        ]);
    }
    rows.push(vec![
        "average".into(),
        String::new(),
        format!("{:.3}", sums[0] / 4.0),
        format!("{:.3}", sums[1] / 4.0),
        format!("{:.3}", sums[2] / 4.0),
    ]);

    section("Table 6: F-1 score for boolean queries");
    table(
        &[
            "query",
            "Pr(positive)",
            "VideoChat-7B",
            "VideoChat-13B*",
            "VQPy",
        ],
        &rows,
    );
    println!("paper: VQPy 0.902/0.591/0.915/0.867 (avg 0.82); VideoChat ~0.40-0.43 avg");
}
