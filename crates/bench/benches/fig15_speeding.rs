//! Figure 15: the speeding-car query (stateful property), VQPy vs EVA.
//!
//! Paper result: VQPy is ~1.5x faster; the gap is EVA's lagged self-join
//! (the `Add1` table) that a relational engine needs to see two frames of
//! the same object, where VQPy's tracked VObj carries its own history.

use std::sync::Arc;
use vqpy_bench::bench_scale;
use vqpy_bench::report::{ms, section, speedup, table};
use vqpy_bench::workloads::{bench_zoo, camera_video, speeding_car_query};
use vqpy_core::VqpySession;
use vqpy_models::Clock;
use vqpy_sql::engine::Database;
use vqpy_sql::queries;
use vqpy_video::source::VideoSource;

fn main() {
    let scale = bench_scale();
    println!("Figure 15 reproduction: speeding car query, VQPy vs EVA (scale {scale})");
    for minutes in [3.0, 10.0] {
        let seconds = minutes * 60.0 * scale;
        let mut rows = Vec::new();
        for cam in ["banff", "jackson", "southampton"] {
            let video = camera_video(cam, seconds, 78);
            let threshold = video
                .scene()
                .unwrap()
                .preset
                .speeding_threshold_px_per_frame() as f64;

            let session = VqpySession::new(bench_zoo());
            let result = session
                .execute(&speeding_car_query(threshold), &video)
                .expect("vqpy runs");
            let vqpy_ms = session.clock().virtual_ms();

            let mut db = Database::new(bench_zoo());
            db.load_video("V", Arc::new(video) as Arc<dyn VideoSource>);
            let clock = Clock::new();
            let eva =
                queries::speeding_car_query(&mut db, "V", threshold, &clock).expect("eva runs");
            let eva_ms = clock.virtual_ms();

            rows.push(vec![
                cam.to_owned(),
                format!("{} ({})", ms(vqpy_ms), speedup(eva_ms, vqpy_ms)),
                format!("{} (1.0x)", ms(eva_ms)),
                format!(
                    "{}/{}",
                    result.frame_hits.len(),
                    queries::hit_frames(&eva).len()
                ),
            ]);
        }
        section(&format!("Figure 15: {minutes:.0}-min clips"));
        table(&["camera", "VQPy", "EVA", "hit frames (VQPy/EVA)"], &rows);
    }
    println!("\npaper: VQPy 1.5-1.6x faster across cameras and lengths");
}
