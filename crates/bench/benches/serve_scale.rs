//! Multi-stream scaling: N concurrent streams served by a
//! `StreamSupervisor`, per-stream model batching (baseline) vs. the
//! shared cross-stream `ModelBatcher`, on one *exclusive* simulated
//! accelerator.
//!
//! The resource model is the honest one for scale-out: the Latency clock
//! serializes model charges on a single device
//! (`DeviceModel::Exclusive`), so N per-stream engines do not enjoy N
//! phantom GPUs, and a physical batch realizes its amortized net cost
//! (`BATCH_OVERHEAD_FRACTION` credited for items after the first, plus the
//! fixed `DISPATCH_LAUNCH_COST` paid once per physical invocation) as one
//! device sleep. Under that model every stream pays the fixed dispatch
//! overhead per *its own* small batch in the baseline — and per (stream,
//! frame) for the non-memoizable `direction` projection, whose crop
//! batches cannot outgrow a single frame inside one stream — while the
//! shared batcher pays it once per coalesced cross-stream batch per
//! (stage, model). That is exactly where the scaling gap comes from.
//! Decode and tracker work stay host-side and overlap the device.
//!
//! A second table stresses the *sharded* supervisor itself: 64 / 256 /
//! 1024 fps-paced streams multiplexed onto a fixed budget of
//! [`SHARD_BUDGET`] shard workers on the virtual clock (wall time here
//! measures the event loop, not simulated device sleeps). Rows report
//! delivered fps, exact shed counts, and per-shard occupancy — and
//! deliberately carry no `speedup` field, so the regression gate's
//! ratio checks skip them.
//!
//! Results land in the `"scaling"` section of `BENCH_serve.json`
//! (co-owned with the multi-query bench via `report::merge_section`).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vqpy_bench::bench_scale;
use vqpy_bench::report::{merge_section, percentiles_json, section, table};
use vqpy_bench::workloads::straight_car_query;
use vqpy_core::{ExecConfig, ExecMode, SessionConfig, VqpySession};
use vqpy_models::{Clock, ClockMode, DeviceModel, ModelZoo};
use vqpy_serve::{
    Backpressure, BatcherConfig, BatcherStats, PaceMode, ServeConfig, StreamSupervisor,
    Subscription, SupervisorConfig, Telemetry,
};
use vqpy_video::source::{SyntheticVideo, VideoSource};
use vqpy_video::{presets, Scene};

const STREAM_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Stream counts for the sharded-supervisor occupancy table.
const SHARDED_STREAM_COUNTS: [usize; 3] = [64, 256, 1024];
/// Fixed shard budget the sharded table multiplexes onto.
const SHARD_BUDGET: usize = 4;
/// Pace of every stream in the sharded table.
const SHARDED_FPS: f32 = 30.0;
/// Small per-stream batches model low-latency serving: the baseline can
/// only amortize dispatch overhead across this window, the shared batcher
/// across every concurrent stream's window.
const BATCH_SIZE: usize = 2;
const WORKERS: usize = 2;

struct RunResult {
    fps: f64,
    wall_s: f64,
    stats: Option<BatcherStats>,
    /// Cross-stream delivery latency `(p50, p95, p99, max)` in ms, read
    /// from the telemetry registry's per-query histogram (spans every
    /// stream's subscription to the shared query name).
    latency_ms: (f64, f64, f64, f64),
    /// Streams resident on each shard worker, sampled while all streams
    /// were attached.
    shard_occupancy: Vec<usize>,
}

/// Subscriptions keyed by stream id. Stream ids are handed out
/// sequentially per server starting at 1, so a `Vec` indexed by the id
/// itself (slot 0 unused) is the natural dense map — no parallel-array
/// bookkeeping between the id list and the subscription list.
#[derive(Default)]
struct SubsByStream(Vec<Vec<Subscription>>);

impl SubsByStream {
    fn insert(&mut self, id: vqpy_serve::StreamId, subs: Vec<Subscription>) {
        let slot = id as usize;
        if self.0.len() <= slot {
            self.0.resize_with(slot + 1, Vec::new);
        }
        self.0[slot] = subs;
    }

    /// Ids of every stream holding at least one subscription, in order.
    fn ids(&self) -> impl Iterator<Item = vqpy_serve::StreamId> + '_ {
        self.0
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.is_empty())
            .map(|(i, _)| i as vqpy_serve::StreamId)
    }
}

fn run(streams: usize, shared_batcher: bool, seconds: f64) -> RunResult {
    let clock = Arc::new(Clock::with_mode(ClockMode::Latency).with_device(DeviceModel::Exclusive));
    let config = SessionConfig {
        exec: ExecConfig {
            batch_size: BATCH_SIZE,
            exec_mode: ExecMode::Pipelined { workers: WORKERS },
            ..ExecConfig::default()
        },
        ..SessionConfig::default()
    };
    let session = Arc::new(VqpySession::with_clock(ModelZoo::standard(), config, clock));
    // Metrics only (no span ring): the registry's delivery-latency
    // histogram is fed regardless of whether tracing is on.
    let telemetry = Telemetry::disabled();
    let supervisor = StreamSupervisor::new(
        Arc::clone(&session),
        SupervisorConfig {
            serve: ServeConfig {
                // One shard per stream: this table measures cross-stream
                // *batching* under genuinely concurrent streams, so every
                // stream gets its own worker regardless of host cores
                // (the auto budget would serialize steps on small
                // machines and deflate the coalescing windows). The
                // sharded table below is the one that fixes the budget.
                shards: streams,
                channel_capacity: 64,
                backpressure: Backpressure::Drop, // nobody drains during the timed run
                batches_per_step: 4,
                telemetry: telemetry.clone(),
                ..ServeConfig::default()
            },
            batcher: shared_batcher.then(|| BatcherConfig {
                max_batch_frames: 64,
                window: Duration::from_millis(1),
                ..BatcherConfig::default()
            }),
            ..SupervisorConfig::default()
        },
    );

    let videos: Vec<Arc<dyn VideoSource>> = (0..streams)
        .map(|i| {
            Arc::new(SyntheticVideo::new(Scene::generate(
                presets::jackson(),
                1000 + i as u64,
                seconds,
            ))) as Arc<dyn VideoSource>
        })
        .collect();
    let total_frames: u64 = videos.iter().map(|v| v.frame_count()).sum();
    let query = straight_car_query();

    let start = Instant::now();
    // Hold the subscriptions (undrained — the Drop policy sheds whatever
    // overflows the channel) so deliveries actually happen and feed the
    // delivery-latency histogram; dropping them would disconnect every
    // channel before the first event.
    let mut subs = SubsByStream::default();
    for v in videos {
        let (id, s) = supervisor
            .add_stream(v, PaceMode::Unpaced, &[Arc::clone(&query)])
            .expect("add stream");
        subs.insert(id, s);
    }
    let shard_occupancy: Vec<usize> = supervisor.shard_loads().iter().map(|l| l.streams).collect();
    for id in subs.ids() {
        supervisor.join_stream(id).expect("stream run");
    }
    let wall_s = start.elapsed().as_secs_f64();
    drop(subs);
    let latency_ms = telemetry
        .registry()
        .histogram(&format!(
            "vqpy_delivery_latency_ms{{query=\"{}\"}}",
            query.name()
        ))
        .percentiles();
    RunResult {
        fps: total_frames as f64 / wall_s,
        wall_s,
        stats: supervisor.batcher_stats(),
        latency_ms,
        shard_occupancy,
    }
}

struct ShardedRunResult {
    delivered_fps: f64,
    wall_s: f64,
    frames_total: u64,
    ticks_shed: u64,
    shard_occupancy: Vec<usize>,
}

/// One row of the sharded-occupancy table: `streams` fps-paced streams
/// multiplexed onto `shards` shard workers, sequential engines on the
/// virtual clock (so wall time measures the scheduler's event loop, not
/// simulated device sleeps), no shared batcher — the supervisor itself is
/// the system under test. Pipelined engines are deliberately off: at 1024
/// streams they would spawn thousands of stage threads and measure the OS
/// scheduler instead of ours.
fn run_sharded(streams: usize, shards: usize, seconds: f64) -> ShardedRunResult {
    let clock = Arc::new(Clock::with_mode(ClockMode::Virtual));
    let config = SessionConfig {
        exec: ExecConfig {
            batch_size: BATCH_SIZE,
            ..ExecConfig::default()
        },
        ..SessionConfig::default()
    };
    let session = Arc::new(VqpySession::with_clock(ModelZoo::standard(), config, clock));
    let supervisor = StreamSupervisor::new(
        Arc::clone(&session),
        SupervisorConfig {
            serve: ServeConfig {
                shards,
                channel_capacity: 16,
                backpressure: Backpressure::Drop, // nobody drains during the timed run
                telemetry: Telemetry::disabled(),
                ..ServeConfig::default()
            },
            ..SupervisorConfig::default()
        },
    );

    let videos: Vec<Arc<dyn VideoSource>> = (0..streams)
        .map(|i| {
            Arc::new(SyntheticVideo::new(Scene::generate(
                presets::jackson(),
                2000 + i as u64,
                seconds,
            ))) as Arc<dyn VideoSource>
        })
        .collect();
    let query = straight_car_query();

    let start = Instant::now();
    let mut subs = SubsByStream::default();
    for v in videos {
        let (id, s) = supervisor
            .add_stream(v, PaceMode::Fps(SHARDED_FPS), &[Arc::clone(&query)])
            .expect("add stream");
        subs.insert(id, s);
    }
    let shard_occupancy: Vec<usize> = supervisor.shard_loads().iter().map(|l| l.streams).collect();
    for id in subs.ids() {
        supervisor.join_stream(id).expect("stream run");
    }
    let wall_s = start.elapsed().as_secs_f64();
    let load = supervisor.load();
    let frames_total = supervisor.server().aggregate().frames_total;
    drop(subs);
    ShardedRunResult {
        delivered_fps: frames_total as f64 / wall_s,
        wall_s,
        frames_total,
        ticks_shed: load.ticks_shed,
        shard_occupancy,
    }
}

/// Serializes a shard-occupancy vector as a JSON array.
fn occupancy_json(occupancy: &[usize]) -> String {
    let cells: Vec<String> = occupancy.iter().map(|n| n.to_string()).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    let seconds = 30.0 * bench_scale();
    section("Multi-stream scaling (shared cross-stream batcher vs per-stream)");
    println!(
        "{seconds:.0}s @30fps per stream, StraightCar query (non-memoizable \
         direction over every vehicle), pipelined({WORKERS}) engines, \
         batch {BATCH_SIZE}, latency clock on one exclusive device"
    );

    let frames_per_stream =
        SyntheticVideo::new(Scene::generate(presets::jackson(), 1000, seconds)).frame_count();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for &n in &STREAM_COUNTS {
        let baseline = run(n, false, seconds);
        let shared = run(n, true, seconds);
        let speedup = shared.fps / baseline.fps;
        let stats = shared.stats.unwrap_or_default();
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", baseline.fps),
            format!("{:.1}", shared.fps),
            format!("{speedup:.3}x"),
            format!("{:.2}", stats.detect.mean_coalesced()),
            format!("{:.2}", stats.classify.mean_coalesced()),
            stats.max_batch_frames.to_string(),
            format!("{:.1}", shared.latency_ms.1),
        ]);
        json_rows.push(format!(
            "      {{\"streams\": {n}, \"baseline_fps\": {:.2}, \"shared_fps\": {:.2}, \
             \"speedup\": {speedup:.4}, \"baseline_wall_s\": {:.2}, \"shared_wall_s\": {:.2}, \
             \"mean_coalesced\": {:.2}, \"max_physical_batch_frames\": {}, \
             \"coalesced_per_stage\": {{\"detect\": {:.2}, \"predict\": {:.2}, \
             \"classify\": {:.2}}}, \"shard_occupancy\": {}, \"classify_requests\": {}, \
             \"classify_physical_batches\": {}, \"latency_ms\": {}}}",
            baseline.fps,
            shared.fps,
            baseline.wall_s,
            shared.wall_s,
            stats.mean_coalesced(),
            stats.max_batch_frames,
            stats.detect.mean_coalesced(),
            stats.predict.mean_coalesced(),
            stats.classify.mean_coalesced(),
            occupancy_json(&shared.shard_occupancy),
            stats.classify.requests,
            stats.classify.physical_batches,
            percentiles_json(shared.latency_ms),
        ));
        // The headline property: once several streams contend for the one
        // device, cross-stream coalescing must at least match per-stream
        // batching (it saves (requests - physical_batches) fixed dispatch
        // overheads per round). Tiny smoke runs are too noisy to gate.
        if n >= 4 && frames_per_stream >= 100 {
            assert!(
                speedup >= 1.0,
                "shared batcher fell below per-stream baseline at {n} streams: {speedup:.3}x"
            );
            assert!(
                stats.classify.requests > 0,
                "property-stage traffic must route through the batcher"
            );
        }
    }
    table(
        &[
            "streams",
            "per-stream fps",
            "shared-batcher fps",
            "speedup",
            "detect coalesced",
            "classify coalesced",
            "max batch",
            "shared p95 ms",
        ],
        &rows,
    );

    section("Sharded supervisor occupancy (fixed shard budget, fps-paced streams)");
    println!(
        "{seconds:.0}s @{SHARDED_FPS:.0}fps per stream, {SHARD_BUDGET} shard workers, \
         sequential engines, virtual clock — the event loop is the system under test"
    );
    let mut sharded_rows = Vec::new();
    for &n in &SHARDED_STREAM_COUNTS {
        let r = run_sharded(n, SHARD_BUDGET, seconds);
        // Sanity: every shard carries streams, and together they carry all
        // of them — admission round-robins across the whole budget.
        assert_eq!(r.shard_occupancy.len(), SHARD_BUDGET);
        assert_eq!(r.shard_occupancy.iter().sum::<usize>(), n);
        assert!(
            r.shard_occupancy.iter().all(|&o| o > 0),
            "idle shard at {n} streams: {:?}",
            r.shard_occupancy
        );
        sharded_rows.push(vec![
            n.to_string(),
            SHARD_BUDGET.to_string(),
            format!("{:.1}", r.delivered_fps),
            r.ticks_shed.to_string(),
            format!("{:.2}", r.wall_s),
            occupancy_json(&r.shard_occupancy),
        ]);
        // No "speedup" key: the regression gate ratio-checks only rows
        // that carry one, so these occupancy rows are reported, and the
        // delivered-fps floor is gated separately (see bench_gate).
        json_rows.push(format!(
            "      {{\"streams\": {n}, \"shards\": {SHARD_BUDGET}, \
             \"pace_fps\": {SHARDED_FPS:.1}, \"delivered_fps\": {:.2}, \
             \"ticks_shed\": {}, \"frames_total\": {}, \"wall_s\": {:.2}, \
             \"shard_occupancy\": {}}}",
            r.delivered_fps,
            r.ticks_shed,
            r.frames_total,
            r.wall_s,
            occupancy_json(&r.shard_occupancy),
        ));
    }
    table(
        &[
            "streams",
            "shards",
            "delivered fps",
            "ticks shed",
            "wall s",
            "occupancy",
        ],
        &sharded_rows,
    );

    let value = format!(
        "{{\n    \"bench\": \"serve_multistream_scaling\",\n    \
         \"video_seconds\": {seconds:.1},\n    \"frames_per_stream\": {frames_per_stream},\n    \
         \"query\": \"StraightCar (non-memoizable direction)\",\n    \
         \"exec\": \"pipelined({WORKERS}), batch {BATCH_SIZE}, 4 batches/step\",\n    \
         \"clock\": \"latency, exclusive device\",\n    \
         \"batcher\": {{\"max_batch_frames\": 64, \"window_ms\": 1, \
         \"stages\": [\"detect\", \"predict\", \"classify\"]}},\n    \
         \"sharded\": {{\"shard_budget\": {SHARD_BUDGET}, \
         \"pace_fps\": {SHARDED_FPS:.1}, \"clock\": \"virtual\", \
         \"exec\": \"sequential, batch {BATCH_SIZE}\"}},\n    \
         \"table\": [\n{}\n    ]\n  }}",
        json_rows.join(",\n"),
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    merge_section(&path, "scaling", &value);
    println!();
    println!("merged \"scaling\" into {}", path.display());
}
