//! Multi-stream scaling: N concurrent streams served by a
//! `StreamSupervisor`, per-stream model batching (baseline) vs. the
//! shared cross-stream `ModelBatcher`, on one *exclusive* simulated
//! accelerator.
//!
//! The resource model is the honest one for scale-out: the Latency clock
//! serializes model charges on a single device
//! (`DeviceModel::Exclusive`), so N per-stream engines do not enjoy N
//! phantom GPUs, and a physical batch realizes its amortized net cost
//! (`BATCH_OVERHEAD_FRACTION` credited for items after the first, plus the
//! fixed `DISPATCH_LAUNCH_COST` paid once per physical invocation) as one
//! device sleep. Under that model every stream pays the fixed dispatch
//! overhead per *its own* small batch in the baseline — and per (stream,
//! frame) for the non-memoizable `direction` projection, whose crop
//! batches cannot outgrow a single frame inside one stream — while the
//! shared batcher pays it once per coalesced cross-stream batch per
//! (stage, model). That is exactly where the scaling gap comes from.
//! Decode and tracker work stay host-side and overlap the device.
//!
//! Results land in the `"scaling"` section of `BENCH_serve.json`
//! (co-owned with the multi-query bench via `report::merge_section`).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};
use vqpy_bench::bench_scale;
use vqpy_bench::report::{merge_section, percentiles_json, section, table};
use vqpy_bench::workloads::straight_car_query;
use vqpy_core::{ExecConfig, ExecMode, SessionConfig, VqpySession};
use vqpy_models::{Clock, ClockMode, DeviceModel, ModelZoo};
use vqpy_serve::{
    Backpressure, BatcherConfig, BatcherStats, PaceMode, ServeConfig, StreamSupervisor,
    SupervisorConfig, Telemetry,
};
use vqpy_video::source::{SyntheticVideo, VideoSource};
use vqpy_video::{presets, Scene};

const STREAM_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Small per-stream batches model low-latency serving: the baseline can
/// only amortize dispatch overhead across this window, the shared batcher
/// across every concurrent stream's window.
const BATCH_SIZE: usize = 2;
const WORKERS: usize = 2;

struct RunResult {
    fps: f64,
    wall_s: f64,
    stats: Option<BatcherStats>,
    /// Cross-stream delivery latency `(p50, p95, p99, max)` in ms, read
    /// from the telemetry registry's per-query histogram (spans every
    /// stream's subscription to the shared query name).
    latency_ms: (f64, f64, f64, f64),
}

fn run(streams: usize, shared_batcher: bool, seconds: f64) -> RunResult {
    let clock = Arc::new(Clock::with_mode(ClockMode::Latency).with_device(DeviceModel::Exclusive));
    let config = SessionConfig {
        exec: ExecConfig {
            batch_size: BATCH_SIZE,
            exec_mode: ExecMode::Pipelined { workers: WORKERS },
            ..ExecConfig::default()
        },
        ..SessionConfig::default()
    };
    let session = Arc::new(VqpySession::with_clock(ModelZoo::standard(), config, clock));
    // Metrics only (no span ring): the registry's delivery-latency
    // histogram is fed regardless of whether tracing is on.
    let telemetry = Telemetry::disabled();
    let supervisor = StreamSupervisor::new(
        Arc::clone(&session),
        SupervisorConfig {
            serve: ServeConfig {
                channel_capacity: 64,
                backpressure: Backpressure::Drop, // nobody drains during the timed run
                batches_per_step: 4,
                telemetry: telemetry.clone(),
                ..ServeConfig::default()
            },
            batcher: shared_batcher.then(|| BatcherConfig {
                max_batch_frames: 64,
                window: Duration::from_millis(1),
                ..BatcherConfig::default()
            }),
            ..SupervisorConfig::default()
        },
    );

    let videos: Vec<Arc<dyn VideoSource>> = (0..streams)
        .map(|i| {
            Arc::new(SyntheticVideo::new(Scene::generate(
                presets::jackson(),
                1000 + i as u64,
                seconds,
            ))) as Arc<dyn VideoSource>
        })
        .collect();
    let total_frames: u64 = videos.iter().map(|v| v.frame_count()).sum();
    let query = straight_car_query();

    let start = Instant::now();
    // Hold the subscriptions (undrained — the Drop policy sheds whatever
    // overflows the channel) so deliveries actually happen and feed the
    // delivery-latency histogram; dropping them would disconnect every
    // channel before the first event.
    let mut ids = Vec::new();
    let mut subs = Vec::new();
    for v in videos {
        let (id, s) = supervisor
            .add_stream(v, PaceMode::Unpaced, &[Arc::clone(&query)])
            .expect("add stream");
        ids.push(id);
        subs.push(s);
    }
    for id in ids {
        supervisor.join_stream(id).expect("stream run");
    }
    let wall_s = start.elapsed().as_secs_f64();
    drop(subs);
    let latency_ms = telemetry
        .registry()
        .histogram(&format!(
            "vqpy_delivery_latency_ms{{query=\"{}\"}}",
            query.name()
        ))
        .percentiles();
    RunResult {
        fps: total_frames as f64 / wall_s,
        wall_s,
        stats: supervisor.batcher_stats(),
        latency_ms,
    }
}

fn main() {
    let seconds = 30.0 * bench_scale();
    section("Multi-stream scaling (shared cross-stream batcher vs per-stream)");
    println!(
        "{seconds:.0}s @30fps per stream, StraightCar query (non-memoizable \
         direction over every vehicle), pipelined({WORKERS}) engines, \
         batch {BATCH_SIZE}, latency clock on one exclusive device"
    );

    let frames_per_stream =
        SyntheticVideo::new(Scene::generate(presets::jackson(), 1000, seconds)).frame_count();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for &n in &STREAM_COUNTS {
        let baseline = run(n, false, seconds);
        let shared = run(n, true, seconds);
        let speedup = shared.fps / baseline.fps;
        let stats = shared.stats.unwrap_or_default();
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", baseline.fps),
            format!("{:.1}", shared.fps),
            format!("{speedup:.3}x"),
            format!("{:.2}", stats.detect.mean_coalesced()),
            format!("{:.2}", stats.classify.mean_coalesced()),
            stats.max_batch_frames.to_string(),
            format!("{:.1}", shared.latency_ms.1),
        ]);
        json_rows.push(format!(
            "      {{\"streams\": {n}, \"baseline_fps\": {:.2}, \"shared_fps\": {:.2}, \
             \"speedup\": {speedup:.4}, \"baseline_wall_s\": {:.2}, \"shared_wall_s\": {:.2}, \
             \"mean_coalesced\": {:.2}, \"max_physical_batch_frames\": {}, \
             \"coalesced_per_stage\": {{\"detect\": {:.2}, \"predict\": {:.2}, \
             \"classify\": {:.2}}}, \"classify_requests\": {}, \
             \"classify_physical_batches\": {}, \"latency_ms\": {}}}",
            baseline.fps,
            shared.fps,
            baseline.wall_s,
            shared.wall_s,
            stats.mean_coalesced(),
            stats.max_batch_frames,
            stats.detect.mean_coalesced(),
            stats.predict.mean_coalesced(),
            stats.classify.mean_coalesced(),
            stats.classify.requests,
            stats.classify.physical_batches,
            percentiles_json(shared.latency_ms),
        ));
        // The headline property: once several streams contend for the one
        // device, cross-stream coalescing must at least match per-stream
        // batching (it saves (requests - physical_batches) fixed dispatch
        // overheads per round). Tiny smoke runs are too noisy to gate.
        if n >= 4 && frames_per_stream >= 100 {
            assert!(
                speedup >= 1.0,
                "shared batcher fell below per-stream baseline at {n} streams: {speedup:.3}x"
            );
            assert!(
                stats.classify.requests > 0,
                "property-stage traffic must route through the batcher"
            );
        }
    }
    table(
        &[
            "streams",
            "per-stream fps",
            "shared-batcher fps",
            "speedup",
            "detect coalesced",
            "classify coalesced",
            "max batch",
            "shared p95 ms",
        ],
        &rows,
    );

    let value = format!(
        "{{\n    \"bench\": \"serve_multistream_scaling\",\n    \
         \"video_seconds\": {seconds:.1},\n    \"frames_per_stream\": {frames_per_stream},\n    \
         \"query\": \"StraightCar (non-memoizable direction)\",\n    \
         \"exec\": \"pipelined({WORKERS}), batch {BATCH_SIZE}, 4 batches/step\",\n    \
         \"clock\": \"latency, exclusive device\",\n    \
         \"batcher\": {{\"max_batch_frames\": 64, \"window_ms\": 1, \
         \"stages\": [\"detect\", \"predict\", \"classify\"]}},\n    \
         \"table\": [\n{}\n    ]\n  }}",
        json_rows.join(",\n"),
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    merge_section(&path, "scaling", &value);
    println!();
    println!("merged \"scaling\" into {}", path.display());
}
