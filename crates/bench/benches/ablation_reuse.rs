//! Ablation: object-level computation reuse (§4.2 / §5.2's "ten-fold"
//! claim for intrinsic properties).
//!
//! Runs the red-car query with the intrinsic cache on and off and reports
//! total cost, attribute-model invocations, cache hit rate, and result
//! agreement.

use vqpy_bench::bench_scale;
use vqpy_bench::report::{ms, section, speedup, table};
use vqpy_bench::workloads::{bench_zoo, camera_video, red_car_query};
use vqpy_core::backend::exec::{execute_plan, ExecConfig};
use vqpy_core::backend::plan::{build_plan, PlanOptions};
use vqpy_core::scoring::f1_frames;
use vqpy_models::Clock;

fn main() {
    let seconds = 180.0 * bench_scale();
    let video = camera_video("jackson", seconds, 808);
    let zoo = bench_zoo();
    let plan =
        build_plan(&[red_car_query()], &zoo, &PlanOptions::vqpy_default()).expect("plan builds");
    println!("Reuse ablation: red car query, {seconds:.0}s Jackson Hole");

    let mut rows = Vec::new();
    let mut results = Vec::new();
    let mut costs = Vec::new();
    let mut color_costs = Vec::new();
    for enable in [false, true] {
        let clock = Clock::new();
        let config = ExecConfig {
            enable_intrinsic_reuse: enable,
            ..ExecConfig::default()
        };
        let out = execute_plan(&plan, &video, &zoo, &clock, &config).expect("runs");
        let color = clock.stat("color_detect").unwrap_or_default();
        rows.push(vec![
            if enable { "reuse ON" } else { "reuse OFF" }.to_owned(),
            ms(clock.virtual_ms()),
            color.invocations.to_string(),
            ms(color.units),
            format!("{:.1}%", out[0].metrics.reuse.hit_rate() * 100.0),
            out[0].frame_hits.len().to_string(),
        ]);
        costs.push(clock.virtual_ms());
        color_costs.push(color.units.max(1e-9));
        results.push(out.into_iter().next().expect("one query"));
    }

    section("Object-level computation reuse (intrinsic color property)");
    table(
        &[
            "config",
            "total",
            "color calls",
            "color cost",
            "cache hit rate",
            "hit frames",
        ],
        &rows,
    );
    let f1 = f1_frames(&results[1].hit_frame_set(), &results[0].hit_frame_set()).f1;
    println!(
        "attribute-model cost reduction: {} | end-to-end: {} | agreement F1: {:.3}",
        speedup(color_costs[0], color_costs[1]),
        speedup(costs[0], costs[1]),
        f1
    );
    println!("paper (§5.2): memoizing static properties gives ~10x on the property computation");
}
