//! Figure 14: the red-car query (stateless/intrinsic property), VQPy vs the
//! EVA-like SQL engine, on Banff / Jackson Hole / Southampton at 3- and
//! 10-minute clip lengths.
//!
//! Paper result: VQPy is on average 4.9x faster (4.2-5.5x), driven by
//! object-level reuse of the intrinsic color property, which the tabular
//! data model cannot express.

use std::sync::Arc;
use vqpy_bench::bench_scale;
use vqpy_bench::report::{ms, section, speedup, table};
use vqpy_bench::workloads::{bench_zoo, camera_video, red_car_query};
use vqpy_core::scoring::{f1_frames, truth_frames};
use vqpy_core::VqpySession;
use vqpy_models::Clock;
use vqpy_sql::engine::Database;
use vqpy_sql::queries;
use vqpy_video::source::VideoSource;
use vqpy_video::NamedColor;

fn main() {
    let scale = bench_scale();
    println!("Figure 14 reproduction: red car query, VQPy vs EVA (scale {scale})");
    for minutes in [3.0, 10.0] {
        let seconds = minutes * 60.0 * scale;
        let mut rows = Vec::new();
        for cam in ["banff", "jackson", "southampton"] {
            let video = camera_video(cam, seconds, 77);
            let truth = truth_frames(video.scene().unwrap(), |t| {
                t.visible.iter().any(|v| {
                    v.attrs
                        .as_vehicle()
                        .map(|a| a.color == NamedColor::Red)
                        .unwrap_or(false)
                })
            });

            // VQPy.
            let session = VqpySession::new(bench_zoo());
            let result = session
                .execute(&red_car_query(), &video)
                .expect("vqpy runs");
            let vqpy_ms = session.clock().virtual_ms();
            let vqpy_f1 = f1_frames(&result.hit_frame_set(), &truth).f1;

            // EVA.
            let mut db = Database::new(bench_zoo());
            db.load_video("V", Arc::new(video) as Arc<dyn VideoSource>);
            let clock = Clock::new();
            let eva = queries::red_car_query(&mut db, "V", &clock).expect("eva runs");
            let eva_ms = clock.virtual_ms();
            let eva_f1 = f1_frames(&queries::hit_frames(&eva), &truth).f1;

            rows.push(vec![
                cam.to_owned(),
                format!("{} ({})", ms(vqpy_ms), speedup(eva_ms, vqpy_ms)),
                format!("{} (1.0x)", ms(eva_ms)),
                format!("{vqpy_f1:.2}/{eva_f1:.2}"),
            ]);
        }
        section(&format!("Figure 14: {minutes:.0}-min clips"));
        table(&["camera", "VQPy", "EVA", "F1 vs truth (VQPy/EVA)"], &rows);
    }
    println!("\npaper: VQPy 3.9-5.5x faster on every camera and length (avg 4.9x)");
}
