//! Ablation: contribution of each backend optimization (§4.3/§4.4) on the
//! red-speeding-car query — lazy evaluation, predicate pull-up, operator
//! fusion, binary-classifier frame filters, and the specialized red-car
//! detector.

use vqpy_bench::bench_scale;
use vqpy_bench::report::{ms, section, speedup, table};
use vqpy_bench::workloads::{bench_zoo, camera_video, red_speeding_query_plain};
use vqpy_core::backend::exec::{execute_plan, ExecConfig};
use vqpy_core::backend::optimize::apply_passes;
use vqpy_core::backend::plan::{build_plan, PlanOptions, SpecializedChoice};
use vqpy_core::scoring::f1_frames;
use vqpy_models::{Clock, Value};
use vqpy_video::source::VideoSource;

fn main() {
    let seconds = 600.0 * bench_scale();
    let video = camera_video("jackson", seconds, 909);
    let threshold = video
        .scene()
        .unwrap()
        .preset
        .speeding_threshold_px_per_frame() as f64;
    let zoo = bench_zoo();
    // Non-intrinsic schema: isolates plan-shape effects from memoization.
    let query = red_speeding_query_plain(threshold);
    println!("Optimization ablation: red speeding car, {seconds:.0}s Jackson Hole");

    let eager = PlanOptions {
        eager_filters: true,
        fuse: false,
        pullup: false,
        label: "eager (no optimizations)".into(),
        ..PlanOptions::vqpy_default()
    };
    let eager_pullup = PlanOptions {
        eager_filters: true,
        fuse: false,
        pullup: true,
        label: "eager + predicate pull-up".into(),
        ..PlanOptions::vqpy_default()
    };
    let lazy_nofuse = PlanOptions {
        fuse: false,
        label: "lazy filters".into(),
        ..PlanOptions::vqpy_default()
    };
    let lazy_fused = PlanOptions {
        label: "lazy + operator fusion".into(),
        ..PlanOptions::vqpy_default()
    };
    let with_binary = PlanOptions {
        binary_filters: vec!["no_red_on_road".into()],
        label: "+ binary classifier filter".into(),
        ..PlanOptions::vqpy_default()
    };
    let mut with_specialized = PlanOptions {
        label: "+ specialized red-car detector".into(),
        ..PlanOptions::vqpy_default()
    };
    with_specialized.specialized.insert(
        "car".into(),
        SpecializedChoice {
            detector: "red_car_detector".into(),
            prop: "color".into(),
            value: Value::from("red"),
        },
    );

    let configs = [
        eager,
        eager_pullup,
        lazy_nofuse,
        lazy_fused,
        with_binary,
        with_specialized,
    ];

    let mut rows = Vec::new();
    let mut baseline_ms = 0.0;
    let mut baseline_hits = None;
    for opts in &configs {
        let mut plan = build_plan(std::slice::from_ref(&query), &zoo, opts).expect("plan builds");
        apply_passes(&mut plan, opts);
        let clock = Clock::new();
        let out = execute_plan(&plan, &video, &zoo, &clock, &ExecConfig::default()).expect("runs");
        let this_ms = clock.virtual_ms();
        if baseline_ms == 0.0 {
            baseline_ms = this_ms;
            baseline_hits = Some(out[0].hit_frame_set());
        }
        let f1 = f1_frames(
            &out[0].hit_frame_set(),
            baseline_hits.as_ref().expect("baseline recorded"),
        )
        .f1;
        rows.push(vec![
            opts.label.clone(),
            ms(this_ms),
            speedup(baseline_ms, this_ms),
            format!("{:.3}", f1),
            out[0].frame_hits.len().to_string(),
        ]);
    }

    section("Backend optimization ablation");
    table(
        &[
            "configuration",
            "cost",
            "speedup vs eager",
            "F1 vs eager",
            "hits",
        ],
        &rows,
    );
    println!("expected shape: lazy projection ordering beats eager; frame filters");
    println!("and the specialized detector give the largest gains (pull-up alone");
    println!("moves filters, not projections, so it cannot reorder model calls)");
}
