//! Device scaling: the same multi-stream serving workload on a simulated
//! accelerator pool of 1, 2, and 4 devices (`DeviceModel::Devices(n)`,
//! least-loaded placement).
//!
//! Four concurrent streams (one shard worker each, pipelined engines)
//! issue detect and classify charges against the pool; under the Latency
//! clock every charge holds one device slot for its simulated duration,
//! so the single-device row serializes exactly like
//! `DeviceModel::Exclusive` while the 4-device row lets every stream's
//! in-flight model call sleep on its own slot. The speedup column is
//! therefore a direct read of how much device parallelism the placement
//! layer actually extracts from the serving stack — decode and tracker
//! work stay host-side and are the non-scaling remainder.
//!
//! Results land in the `"device_scale"` section of `BENCH_serve.json`
//! (`table` rows carry `devices` + `speedup`, which the regression gate
//! ratio-checks; per-device busy/queued splits ride along as evidence
//! that placement spread the load rather than pinning one slot).

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use vqpy_bench::bench_scale;
use vqpy_bench::report::{merge_section, section, table};
use vqpy_bench::workloads::straight_car_query;
use vqpy_core::{ExecConfig, ExecMode, SessionConfig, VqpySession};
use vqpy_models::{Clock, ClockMode, DeviceModel, ModelZoo, PlacementPolicy};
use vqpy_serve::{
    Backpressure, PaceMode, ServeConfig, StreamSupervisor, Subscription, SupervisorConfig,
    Telemetry,
};
use vqpy_video::source::{SyntheticVideo, VideoSource};
use vqpy_video::{presets, Scene};

/// Device-pool sizes under test; the first is the speedup denominator.
const DEVICE_COUNTS: [usize; 3] = [1, 2, 4];
/// Concurrent streams contending for the pool — one shard worker each.
const STREAMS: usize = 4;
const BATCH_SIZE: usize = 2;
const WORKERS: usize = 2;

struct RunResult {
    fps: f64,
    wall_s: f64,
    /// Per-device busy milliseconds at the end of the run.
    busy_ms: Vec<f64>,
}

fn run(devices: usize, seconds: f64) -> RunResult {
    let clock = Arc::new(
        Clock::with_mode(ClockMode::Latency)
            .with_device(DeviceModel::Devices(devices))
            .with_placement(PlacementPolicy::LeastLoaded),
    );
    let config = SessionConfig {
        exec: ExecConfig {
            batch_size: BATCH_SIZE,
            exec_mode: ExecMode::Pipelined { workers: WORKERS },
            ..ExecConfig::default()
        },
        ..SessionConfig::default()
    };
    let session = Arc::new(VqpySession::with_clock(ModelZoo::standard(), config, clock));
    let supervisor = StreamSupervisor::new(
        Arc::clone(&session),
        SupervisorConfig {
            serve: ServeConfig {
                // One shard per stream: the pool, not the scheduler, must
                // be the bottleneck under test.
                shards: STREAMS,
                channel_capacity: 64,
                backpressure: Backpressure::Drop, // nobody drains during the timed run
                batches_per_step: 4,
                telemetry: Telemetry::disabled(),
                ..ServeConfig::default()
            },
            // No shared batcher: per-stream dispatch keeps one in-flight
            // physical call per stream, which is exactly the concurrency
            // the device pool should absorb.
            ..SupervisorConfig::default()
        },
    );

    let videos: Vec<Arc<dyn VideoSource>> = (0..STREAMS)
        .map(|i| {
            Arc::new(SyntheticVideo::new(Scene::generate(
                presets::jackson(),
                3000 + i as u64,
                seconds,
            ))) as Arc<dyn VideoSource>
        })
        .collect();
    let total_frames: u64 = videos.iter().map(|v| v.frame_count()).sum();
    let query = straight_car_query();

    let start = Instant::now();
    // Hold the subscriptions (undrained — the Drop policy sheds whatever
    // overflows) so deliveries actually happen.
    let mut subs: Vec<(vqpy_serve::StreamId, Vec<Subscription>)> = Vec::new();
    for v in videos {
        let pair = supervisor
            .add_stream(v, PaceMode::Unpaced, &[Arc::clone(&query)])
            .expect("add stream");
        subs.push(pair);
    }
    for (id, _) in &subs {
        supervisor.join_stream(*id).expect("stream run");
    }
    let wall_s = start.elapsed().as_secs_f64();
    let busy_ms = session
        .clock()
        .device_stats()
        .iter()
        .map(|d| d.busy_ms)
        .collect();
    drop(subs);
    RunResult {
        fps: total_frames as f64 / wall_s,
        wall_s,
        busy_ms,
    }
}

fn busy_json(busy_ms: &[f64]) -> String {
    let cells: Vec<String> = busy_ms.iter().map(|b| format!("{b:.1}")).collect();
    format!("[{}]", cells.join(", "))
}

fn main() {
    let seconds = 30.0 * bench_scale();
    section("Device scaling (DeviceModel::Devices(n), least-loaded placement)");
    println!(
        "{seconds:.0}s @30fps x {STREAMS} streams, StraightCar query, \
         pipelined({WORKERS}) engines, batch {BATCH_SIZE}, latency clock"
    );

    let frames_per_stream =
        SyntheticVideo::new(Scene::generate(presets::jackson(), 3000, seconds)).frame_count();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut base_fps = None;
    for &n in &DEVICE_COUNTS {
        let r = run(n, seconds);
        let base = *base_fps.get_or_insert(r.fps);
        let speedup = r.fps / base;
        // Placement sanity: every device in the pool did real work — a
        // pinned pool would show one busy slot and n-1 idle ones.
        assert_eq!(r.busy_ms.len(), n, "pool size must match the model");
        assert!(
            r.busy_ms.iter().all(|&b| b > 0.0),
            "idle device in a {n}-device pool: {:?}",
            r.busy_ms
        );
        rows.push(vec![
            n.to_string(),
            format!("{:.1}", r.fps),
            format!("{speedup:.3}x"),
            format!("{:.2}", r.wall_s),
            busy_json(&r.busy_ms),
        ]);
        json_rows.push(format!(
            "      {{\"devices\": {n}, \"fps\": {:.2}, \"speedup\": {speedup:.4}, \
             \"wall_s\": {:.2}, \"busy_ms\": {}}}",
            r.fps,
            r.wall_s,
            busy_json(&r.busy_ms),
        ));
        // The headline property: four streams' worth of device sleeps must
        // overlap on a 4-slot pool. Tiny smoke runs are too noisy to gate.
        if n == 4 && frames_per_stream >= 100 {
            assert!(
                speedup >= 1.6,
                "4-device pool under 1.6x over one device: {speedup:.3}x"
            );
        }
    }
    table(&["devices", "fps", "speedup", "wall s", "busy ms"], &rows);

    let value = format!(
        "{{\n    \"bench\": \"serve_device_scaling\",\n    \
         \"video_seconds\": {seconds:.1},\n    \"frames_per_stream\": {frames_per_stream},\n    \
         \"streams\": {STREAMS},\n    \
         \"query\": \"StraightCar (non-memoizable direction)\",\n    \
         \"exec\": \"pipelined({WORKERS}), batch {BATCH_SIZE}, 4 batches/step\",\n    \
         \"clock\": \"latency, Devices(n), least-loaded placement\",\n    \
         \"table\": [\n{}\n    ]\n  }}",
        json_rows.join(",\n"),
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    merge_section(&path, "device_scale", &value);
    println!();
    println!("merged \"device_scale\" into {}", path.display());
}
