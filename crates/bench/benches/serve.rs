//! Serving throughput: 8 concurrent queries on one live stream, shared
//! super-plan (`StreamServer`) vs. 8 independent sessions, on the fig13
//! CVIP workload (CityFlow-style video, dataset tracks, annotated
//! color-type-direction triple queries).
//!
//! The clock runs in Latency mode so virtual model cost is wall-visible.
//! The shared configuration runs every query through one plan: the
//! dataset-track source, tracker, and the intrinsic color/vtype
//! projections execute once per frame regardless of query count, which is
//! exactly the object-oriented sharing (§4.2/§5.3) the serving layer keeps
//! alive for long-running streams. The independent baseline pays that work
//! once *per query*. A second section serves two streams concurrently from
//! one server (multi-stream fan-out on threads).
//!
//! Results go to `BENCH_serve.json` at the workspace root.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use vqpy_baselines::CvipQuery;
use vqpy_bench::bench_scale;
use vqpy_bench::report::{exec_metrics_json, json_escape, section};
use vqpy_bench::workloads::{bench_zoo, cityflow_video, triple_query};
use vqpy_core::{Query, SessionConfig, VqpySession};
use vqpy_models::{Clock, ClockMode};
use vqpy_serve::{ServeConfig, ServeSession};
use vqpy_video::source::VideoSource;

const WORKERS: usize = 2;

/// Eight standardized color-type-direction triples (Table 1's five plus
/// three more combinations over the same attribute domains).
fn eight_queries() -> Vec<Arc<Query>> {
    let triples = [
        ("green", "sedan", "straight"),
        ("green", "bus", "straight"),
        ("red", "sedan", "straight"),
        ("black", "sedan", "straight"),
        ("black", "suv", "right"),
        ("white", "sedan", "left"),
        ("blue", "suv", "straight"),
        ("red", "bus", "right"),
    ];
    triples
        .iter()
        .enumerate()
        .map(|(i, (c, t, d))| {
            triple_query(
                &format!("Q{}_{c}_{t}_{d}", i + 1),
                &CvipQuery::new(c, t, d),
                true,
            )
        })
        .collect()
}

/// The head-to-head sharing comparison runs both configurations on the
/// sequential executor: with the latency clock, wall time then equals
/// total model latency, which is the §5.3 "one shared pipeline vs. N
/// pipelines" measurement. (Pipelined execution hides more of the
/// *baseline's* latency than the shared plan's serial tail, so it would
/// understate sharing; the multi-stream section below exercises the
/// pipelined engine.)
fn session_config() -> SessionConfig {
    SessionConfig::default()
}

fn main() {
    let seconds = 40.0 * bench_scale();
    section("Serving throughput (8 queries, one stream, fig13 CVIP workload)");
    println!("video: {seconds:.0}s @10fps CityFlow-style, latency clock, sequential executor");

    let queries = eight_queries();
    let video = Arc::new(cityflow_video(seconds, 2024));
    let frames = video.frame_count();

    // ---- independent baseline: one session per query ----------------------
    let indep_start = Instant::now();
    let mut indep_hits: Vec<Vec<u64>> = Vec::new();
    for q in &queries {
        let session = VqpySession::with_clock(
            bench_zoo(),
            session_config(),
            Arc::new(Clock::with_mode(ClockMode::Latency)),
        );
        let r = session.execute(q, video.as_ref()).expect("independent run");
        indep_hits.push(r.hit_frames());
    }
    let indep_wall = indep_start.elapsed().as_secs_f64();
    let indep_fps = frames as f64 / indep_wall;
    println!(
        "  independent: {indep_fps:7.1} frames/s  ({indep_wall:.2}s wall for 8 sessions x {frames} frames)"
    );

    // ---- shared super-plan: one StreamServer, 8 subscriptions -------------
    let session = Arc::new(VqpySession::with_clock(
        bench_zoo(),
        session_config(),
        Arc::new(Clock::with_mode(ClockMode::Latency)),
    ));
    let server = session.serve(ServeConfig {
        batches_per_step: 4,
        ..ServeConfig::default()
    });
    let stream = server.open_stream(Arc::clone(&video) as Arc<dyn VideoSource>);
    let subs: Vec<_> = queries
        .iter()
        .map(|q| server.attach(stream, Arc::clone(q)).expect("attach"))
        .collect();
    let shared_start = Instant::now();
    let serve_metrics = server.run_to_end(stream).expect("serve run");
    let shared_wall = shared_start.elapsed().as_secs_f64();
    let shared_fps = frames as f64 / shared_wall;
    let exec = server.exec_metrics(stream).expect("exec metrics");
    let speedup = shared_fps / indep_fps;
    println!(
        "  shared:      {shared_fps:7.1} frames/s  ({shared_wall:.2}s wall)  speedup {speedup:.2}x"
    );
    println!("  serve: {}", serve_metrics.summary());
    println!("  exec:  {}", exec.summary());

    // Served results must be byte-identical to the independent runs.
    for (sub, expected) in subs.into_iter().zip(&indep_hits) {
        let (hits, _) = sub.collect();
        let frames_hit: Vec<u64> = hits.iter().map(|h| h.frame).collect();
        assert_eq!(&frames_hit, expected, "served results diverged");
    }
    println!("  results identical across all 8 queries");
    if frames >= 50 {
        assert!(
            speedup >= 2.0,
            "shared serving must be >= 2x over independent sessions, got {speedup:.2}x"
        );
    }

    // ---- multi-stream: two live streams served concurrently ---------------
    section("Multi-stream serving (2 streams x 4 queries, threads)");
    let session2 = Arc::new(VqpySession::with_clock(
        bench_zoo(),
        SessionConfig::pipelined(WORKERS),
        Arc::new(Clock::with_mode(ClockMode::Latency)),
    ));
    let server2 = Arc::new(session2.serve(ServeConfig {
        batches_per_step: 4,
        ..ServeConfig::default()
    }));
    let videos = [
        Arc::new(cityflow_video(seconds, 31)) as Arc<dyn VideoSource>,
        Arc::new(cityflow_video(seconds, 32)) as Arc<dyn VideoSource>,
    ];
    let multi_frames: u64 = videos.iter().map(|v| v.frame_count()).sum();
    let streams: Vec<_> = videos
        .iter()
        .map(|v| server2.open_stream(Arc::clone(v)))
        .collect();
    let mut multi_subs = Vec::new();
    for &stream in &streams {
        for q in &queries[..4] {
            multi_subs.push(server2.attach(stream, Arc::clone(q)).expect("attach"));
        }
    }
    let multi_start = Instant::now();
    let drivers: Vec<_> = streams
        .iter()
        .map(|&stream| {
            let server = Arc::clone(&server2);
            std::thread::spawn(move || server.run_to_end(stream).expect("stream run"))
        })
        .collect();
    for d in drivers {
        d.join().expect("driver thread");
    }
    let multi_wall = multi_start.elapsed().as_secs_f64();
    let multi_fps = multi_frames as f64 / multi_wall;
    drop(multi_subs);
    println!(
        "  combined:    {multi_fps:7.1} frames/s  ({multi_wall:.2}s wall, {multi_frames} frames)"
    );

    // ---- JSON record -------------------------------------------------------
    // One section of BENCH_serve.json, co-owned with the multi-stream
    // scaling bench (`serve_scale`) via `merge_section`.
    let value = format!(
        "{{\n    \"bench\": \"serve_multiquery_fig13_cvip\",\n    \
         \"video_seconds\": {seconds:.1},\n    \
         \"frames\": {frames},\n    \"queries\": {},\n    \"workers\": {WORKERS},\n    \
         \"clock\": \"latency\",\n    \"independent_fps\": {indep_fps:.2},\n    \
         \"shared_fps\": {shared_fps:.2},\n    \"speedup\": {speedup:.3},\n    \
         \"results_identical\": true,\n    \"serve_summary\": \"{}\",\n    \
         \"shared_exec\": {},\n    \"multi_stream\": {{\n      \"streams\": 2,\n      \
         \"queries_per_stream\": 4,\n      \"frames\": {multi_frames},\n      \
         \"combined_fps\": {multi_fps:.2}\n    }}\n  }}",
        queries.len(),
        json_escape(&serve_metrics.summary()),
        exec_metrics_json(&exec, 4),
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    vqpy_bench::report::merge_section(&path, "multiquery", &value);
    println!();
    println!("merged \"multiquery\" into {}", path.display());
}
