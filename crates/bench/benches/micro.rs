//! Criterion micro-benchmarks of the engine's real (non-virtual)
//! hot paths: Hungarian assignment, Kalman filtering, frame rendering,
//! pixel classification, and predicate evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use vqpy_core::frontend::predicate::{Pred, PredEnv};
use vqpy_models::Value;
use vqpy_tracker::hungarian;
use vqpy_tracker::{KalmanFilter, SortTracker, TrackerParams};
use vqpy_video::geometry::{BBox, Point};
use vqpy_video::render::render_frame;
use vqpy_video::scene::Scene;
use vqpy_video::{presets, VideoSource};

fn bench_hungarian(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [5usize, 15, 40] {
        let cost: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| ((i * 31 + j * 17) % 100) as f64).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &cost, |b, cost| {
            b.iter(|| hungarian::solve(std::hint::black_box(cost)))
        });
    }
    group.finish();
}

fn bench_kalman(c: &mut Criterion) {
    c.bench_function("kalman_predict_update", |b| {
        let mut kf = KalmanFilter::new(&BBox::from_center(Point::new(100.0, 100.0), 40.0, 20.0));
        let mut x = 100.0f32;
        b.iter(|| {
            kf.predict();
            x += 3.0;
            kf.update(&BBox::from_center(Point::new(x, 100.0), 40.0, 20.0));
            std::hint::black_box(kf.bbox())
        })
    });
}

fn bench_tracker(c: &mut Criterion) {
    c.bench_function("sort_tracker_10_objects", |b| {
        let mut tracker = SortTracker::new(TrackerParams::default());
        let mut t = 0f32;
        b.iter(|| {
            t += 2.0;
            let dets: Vec<(BBox, &str)> = (0..10)
                .map(|i| {
                    (
                        BBox::from_center(
                            Point::new(50.0 + i as f32 * 120.0 + t, 200.0),
                            60.0,
                            40.0,
                        ),
                        "car",
                    )
                })
                .collect();
            std::hint::black_box(tracker.update(&dets))
        })
    });
}

fn bench_render(c: &mut Criterion) {
    let scene = Scene::generate(presets::jackson(), 42, 30.0);
    c.bench_function("render_frame_jackson", |b| {
        let mut f = 0u64;
        b.iter(|| {
            f = (f + 7) % scene.frame_count();
            std::hint::black_box(render_frame(&scene, f))
        })
    });
}

fn bench_pixels(c: &mut Criterion) {
    let scene = Scene::generate(presets::jackson(), 42, 10.0);
    let video = vqpy_video::SyntheticVideo::new(scene);
    let frame = video.frame(60);
    let crop = BBox::new(400.0, 400.0, 700.0, 600.0);
    c.bench_function("dominant_rgb_in_crop", |b| {
        b.iter(|| std::hint::black_box(frame.pixels.dominant_rgb_in(&crop)))
    });
}

fn bench_predicate(c: &mut Criterion) {
    let pred = Pred::gt("car", "score", 0.5)
        & Pred::eq("car", "color", "red")
        & (Pred::gt("car", "speed", 10.0) | Pred::eq("car", "vtype", "suv"));
    let mut env = PredEnv::default();
    let props = env.objects.entry("car".into()).or_default();
    props.insert("score".into(), Value::Float(0.9));
    props.insert("color".into(), Value::from("red"));
    props.insert("speed".into(), Value::Float(22.0));
    props.insert("vtype".into(), Value::from("sedan"));
    c.bench_function("predicate_eval", |b| {
        b.iter(|| std::hint::black_box(pred.eval(&env)))
    });
}

criterion_group!(
    benches,
    bench_hungarian,
    bench_kalman,
    bench_tracker,
    bench_render,
    bench_pixels,
    bench_predicate
);
criterion_main!(benches);
