//! Execution-engine throughput: Sequential vs. Pipelined on the Figure 13
//! CVIP workload (CityFlow-style video, dataset tracks, annotated
//! color-type-direction triple queries).
//!
//! The clock runs in Latency mode: every virtual model millisecond blocks
//! the charging thread for a real millisecond, modelling accelerator
//! inference as host-visible latency. Sequential execution pays that
//! latency serially; the pipelined engine overlaps it across stages and
//! workers, which is the speedup this bench measures. Two queries bound the
//! range: Q1 (green sedan — selective filters, decode-bound) shows the
//! pipeline at its best; Q3 (red sedan — many survivors feed the
//! non-intrinsic direction model in the sequential tail) is the honest
//! worst case. Results (frames/sec, speedup, reuse hit rate) go to
//! `BENCH_exec.json` at the workspace root so future commits have a perf
//! trajectory.

use std::path::PathBuf;
use std::time::Instant;
use vqpy_bench::bench_scale;
use vqpy_bench::report::{exec_metrics_json, percentiles, section};
use vqpy_bench::workloads::{bench_zoo, cityflow_video, table1_queries, triple_query};
use vqpy_core::backend::exec::execute_plan;
use vqpy_core::backend::plan::{build_plan, PlanOptions};
use vqpy_core::{ExecConfig, ExecMode};
use vqpy_models::{Clock, ClockMode};

const WORKERS: usize = 4;

struct Run {
    frames: u64,
    wall_s: f64,
    fps: f64,
    hit_frames: Vec<u64>,
    metrics: vqpy_core::ExecMetrics,
}

fn run_mode(query_index: usize, mode: ExecMode, seconds: f64) -> Run {
    let zoo = bench_zoo();
    let video = cityflow_video(seconds, 2023);
    let (label, cq) = &table1_queries()[query_index];
    let query = triple_query(&format!("{label}_throughput"), cq, true);
    let plan = build_plan(&[query], &zoo, &PlanOptions::vqpy_default()).expect("plan builds");
    let clock = Clock::with_mode(ClockMode::Latency);
    let config = ExecConfig {
        exec_mode: mode,
        // Sequential runs record per-frame wall latency so the report can
        // quote p50/p95/p99 alongside the mean throughput.
        record_per_frame_ms: true,
        ..ExecConfig::default()
    };
    let start = Instant::now();
    let results = execute_plan(&plan, &video, &zoo, &clock, &config).expect("runs");
    let wall_s = start.elapsed().as_secs_f64();
    let r = &results[0];
    Run {
        frames: r.metrics.frames_total,
        wall_s,
        fps: r.metrics.frames_total as f64 / wall_s,
        hit_frames: r.hit_frames(),
        metrics: r.metrics.clone(),
    }
}

fn bench_query(query_index: usize, seconds: f64) -> String {
    let (label, cq) = &table1_queries()[query_index];
    println!();
    println!(
        "query {label} ({} {} {}):",
        cq.color, cq.vtype, cq.direction
    );
    let seq = run_mode(query_index, ExecMode::Sequential, seconds);
    let pipe = run_mode(
        query_index,
        ExecMode::Pipelined { workers: WORKERS },
        seconds,
    );

    let speedup = pipe.fps / seq.fps;
    println!(
        "  sequential:  {:7.1} frames/s  ({:.2}s wall, {} frames)",
        seq.fps, seq.wall_s, seq.frames
    );
    println!(
        "  pipelined:   {:7.1} frames/s  ({:.2}s wall, {WORKERS} workers)  speedup {speedup:.2}x",
        pipe.fps, pipe.wall_s
    );
    if !seq.metrics.per_frame_ms.is_empty() {
        let (p50, p95, p99, max) = percentiles(&seq.metrics.per_frame_ms);
        println!(
            "  sequential frame latency: p50 {p50:.2}ms  p95 {p95:.2}ms  \
             p99 {p99:.2}ms  max {max:.2}ms"
        );
    }
    println!("  reuse hit rate: {:.3}", pipe.metrics.reuse.hit_rate());
    for (stage, ms) in &pipe.metrics.stage_wall_ms {
        println!("    stage {stage:<14} {ms:9.1} ms busy");
    }
    println!("  exec: {}", pipe.metrics.summary());
    assert_eq!(
        seq.hit_frames, pipe.hit_frames,
        "pipelined results must be identical to sequential"
    );

    format!(
        "    {{\n      \"query\": \"{label}\",\n      \"frames\": {},\n      \
         \"sequential_fps\": {:.2},\n      \"pipelined_fps\": {:.2},\n      \
         \"speedup\": {speedup:.3},\n      \"results_identical\": true,\n      \
         \"sequential_exec\": {},\n      \"pipelined_exec\": {}\n    }}",
        seq.frames,
        seq.fps,
        pipe.fps,
        exec_metrics_json(&seq.metrics, 6),
        exec_metrics_json(&pipe.metrics, 6),
    )
}

fn main() {
    let seconds = 120.0 * bench_scale();
    section("Execution-engine throughput (fig13 CVIP workload, latency clock)");
    println!("video: {seconds:.0}s @10fps CityFlow-style, annotated triple queries");

    // Q1: selective (decode-bound). Q3: busiest tail (worst case).
    let entries = [bench_query(0, seconds), bench_query(2, seconds)];

    let json = format!(
        "{{\n  \"bench\": \"throughput_fig13_cvip\",\n  \"video_seconds\": {seconds:.1},\n  \
         \"workers\": {WORKERS},\n  \"clock\": \"latency\",\n  \"queries\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_exec.json");
    std::fs::write(&path, json).expect("write BENCH_exec.json");
    println!();
    println!("wrote {}", path.display());
}
