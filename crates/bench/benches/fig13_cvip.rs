//! Figure 13 + Table 1: VQPy vs. the CVIP handcrafted pipeline on the five
//! CityFlow-NL color-type-direction queries.
//!
//! Paper result: CVIP's runtime is constant (~850 s) across queries; vanilla
//! VQPy averages 3.1x faster (more for rare colors like green); VQPy with
//! intrinsic annotations reaches 11-14x. Figure 13(b): per-frame cost is
//! high/flat for CVIP, lower for VQPy, and flattens further with
//! annotations.

use std::sync::Arc;
use vqpy_baselines::run_cvip_with;
use vqpy_bench::bench_scale;
use vqpy_bench::report::{mean, ms, section, speedup, table};
use vqpy_bench::workloads::{
    bench_zoo, cityflow_video, table1_queries, triple_query, CITYFLOW_TRACKS,
};
use vqpy_core::scoring::f1_frames;
use vqpy_core::{ExecConfig, SessionConfig, VqpySession};
use vqpy_models::Clock;

fn main() {
    let seconds = 120.0 * bench_scale();
    let video = cityflow_video(seconds, 2023);
    let zoo = bench_zoo();
    println!("Figure 13 reproduction: CityFlow-style video, {seconds:.0}s @10fps, dataset tracks");

    let mut rows = Vec::new();
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for (label, cq) in table1_queries() {
        // CVIP: every attribute model on every crop, filter last.
        let cvip_clock = Clock::new();
        let cvip =
            run_cvip_with(&video, &zoo, &cvip_clock, &cq, CITYFLOW_TRACKS).expect("cvip runs");

        // Vanilla VQPy: lazy evaluation, no intrinsic annotations.
        let config = SessionConfig {
            exec: ExecConfig {
                record_per_frame_ms: true,
                ..ExecConfig::default()
            },
            ..SessionConfig::default()
        };
        let vanilla_session = VqpySession::with_config(Arc::clone(&zoo), config.clone());
        let vanilla = vanilla_session
            .execute(
                &triple_query(&format!("{label}_vanilla"), &cq, false),
                &video,
            )
            .expect("vanilla runs");
        let vanilla_ms = vanilla_session.clock().virtual_ms();

        // VQPy with intrinsic annotations (§4.2 reuse).
        let ann_session = VqpySession::with_config(Arc::clone(&zoo), config);
        let annotated = ann_session
            .execute(&triple_query(&format!("{label}_ann"), &cq, true), &video)
            .expect("annotated runs");
        let ann_ms = ann_session.clock().virtual_ms();

        let f1_vanilla = f1_frames(&vanilla.hit_frame_set(), &cvip.hit_frames).f1;
        let f1_ann = f1_frames(&annotated.hit_frame_set(), &cvip.hit_frames).f1;
        rows.push(vec![
            label.to_owned(),
            format!("{} {} {}", cq.color, cq.vtype, cq.direction),
            ms(cvip.virtual_ms),
            format!(
                "{} ({})",
                ms(vanilla_ms),
                speedup(cvip.virtual_ms, vanilla_ms)
            ),
            format!("{} ({})", ms(ann_ms), speedup(cvip.virtual_ms, ann_ms)),
            format!("{f1_vanilla:.2}/{f1_ann:.2}"),
        ]);

        if label == "Q3" {
            series.push(("CVIP".into(), cvip.per_frame_ms.clone()));
            series.push(("VQPy".into(), vanilla.metrics.per_frame_ms.clone()));
            series.push((
                "VQPy+annotation".into(),
                annotated.metrics.per_frame_ms.clone(),
            ));
        }
    }

    section("Figure 13(a): runtime per query (speedup vs CVIP)");
    table(
        &[
            "query",
            "triple",
            "CVIP",
            "VQPy",
            "VQPy+annotation",
            "F1 vs CVIP",
        ],
        &rows,
    );
    println!("paper: CVIP constant ~850s; VQPy avg 3.1x; VQPy+annotation up to 12.6x");

    section("Figure 13(b): per-frame cost over time (Q3, virtual ms)");
    let mut rows_b = Vec::new();
    for (name, s) in &series {
        let n = s.len();
        let q = n / 4;
        rows_b.push(vec![
            name.clone(),
            format!("{:.2}", mean(&s[..q.max(1)])),
            format!("{:.2}", mean(&s[q..(2 * q).max(q + 1)])),
            format!("{:.2}", mean(&s[(2 * q)..(3 * q).max(2 * q + 1)])),
            format!("{:.2}", mean(&s[(3 * q)..])),
        ]);
    }
    table(&["system", "1st quarter", "2nd", "3rd", "4th"], &rows_b);
    println!("paper: CVIP high & flat; VQPy lower; annotations flatten the curve");
}
