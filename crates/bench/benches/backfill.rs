//! Backfill throughput: replaying a stored stream vs. decoding it live.
//!
//! One stream runs live once with the frame store enabled (persisting every
//! model stage's outputs), then the same query is attached `from` the
//! stream's origin and the stored history is replayed. With the latency
//! clock and the standard zoo (a 30 ms-per-frame general detector), the
//! live pass pays full virtual model cost per frame while the replay pays
//! only the flat store-read charge for every frame whose outputs are on
//! disk — the fps gap is the paper-level payoff of the store: querying the
//! past without re-running the models.
//!
//! Results merge into the `backfill` section of `BENCH_serve.json`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;
use vqpy_bench::bench_scale;
use vqpy_bench::report::{merge_section, section};
use vqpy_core::frontend::{library, predicate::Pred};
use vqpy_core::{Query, SessionConfig, VqpySession};
use vqpy_models::{Clock, ClockMode, ModelZoo};
use vqpy_serve::{AttachSpec, ServeConfig, ServeSession};
use vqpy_store::{FrameStore, StoreConfig};
use vqpy_video::source::{SyntheticVideo, VideoSource};
use vqpy_video::{presets, Scene};

fn main() {
    let seconds = 20.0 * bench_scale();
    section("Backfill (stored replay vs. live decode, red-car query)");
    println!("video: {seconds:.0}s @15fps jackson preset, latency clock, standard zoo");

    let dir = std::env::temp_dir().join(format!("vqpy_bench_backfill_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let fs = FrameStore::open(StoreConfig {
        background_eviction: false,
        ..StoreConfig::new(dir.clone())
    })
    .expect("open store");

    let query: Arc<Query> = Query::builder("RedCar")
        .vobj("car", library::vehicle_schema_intrinsic())
        .frame_constraint(Pred::gt("car", "score", 0.5) & Pred::eq("car", "color", "red"))
        .frame_output(&[("car", "track_id"), ("car", "bbox")])
        .build()
        .expect("query");
    let video = Arc::new(SyntheticVideo::new(Scene::generate(
        presets::jackson(),
        57,
        seconds,
    )));
    let frames = video.frame_count();

    let session = Arc::new(VqpySession::with_clock(
        ModelZoo::standard(),
        SessionConfig::default(),
        Arc::new(Clock::with_mode(ClockMode::Latency)),
    ));
    let server = session.serve(ServeConfig {
        store: Some(Arc::clone(&fs)),
        batches_per_step: 4,
        ..ServeConfig::default()
    });

    // ---- live pass: decode + full model cost, persisting as it goes -------
    let stream = server.open_stream(Arc::clone(&video) as Arc<dyn VideoSource>);
    let live_sub = server.attach(stream, Arc::clone(&query)).expect("attach");
    let live_start = Instant::now();
    server.run_to_end(stream).expect("live run");
    let live_wall = live_start.elapsed().as_secs_f64();
    let live_fps = frames as f64 / live_wall;
    let (live_hits, live_agg) = live_sub.collect();
    println!("  live decode:   {live_fps:7.1} frames/s  ({live_wall:.2}s wall, {frames} frames)");

    // ---- backfill: replay the stored history from the origin ---------------
    let sub = server
        .attach(stream, AttachSpec::new(Arc::clone(&query)).from(fs.epoch()))
        .expect("attach from epoch");
    let replay = sub.replay().expect("from-past attach yields a replay");
    let replay_start = Instant::now();
    server.run_replay(replay).expect("replay run");
    let replay_wall = replay_start.elapsed().as_secs_f64();
    let replay_fps = frames as f64 / replay_wall;
    let (replay_hits, replay_agg) = sub.collect();
    let replay_hit_frames = fs
        .metrics()
        .replay_hits
        .load(std::sync::atomic::Ordering::Relaxed);
    let speedup = replay_fps / live_fps;
    println!(
        "  stored replay: {replay_fps:7.1} frames/s  ({replay_wall:.2}s wall)  speedup {speedup:.2}x"
    );
    println!("  store answered {replay_hit_frames} frames' model stages");

    // Replay must be byte-identical to the live pass, and — the point of
    // the store — faster than paying the models again.
    assert_eq!(replay_hits, live_hits, "replay diverged from live");
    assert_eq!(replay_agg, live_agg, "replay aggregate diverged");
    println!("  results identical between live and replay");
    if frames >= 50 {
        assert!(
            speedup > 1.0,
            "stored replay must beat live decode, got {speedup:.2}x"
        );
    }

    // ---- JSON record -------------------------------------------------------
    let value = format!(
        "{{\n    \"bench\": \"backfill_stored_replay\",\n    \
         \"video_seconds\": {seconds:.1},\n    \"frames\": {frames},\n    \
         \"query\": \"RedCar (intrinsic color)\",\n    \
         \"clock\": \"latency\",\n    \"live_fps\": {live_fps:.2},\n    \
         \"replay_fps\": {replay_fps:.2},\n    \"speedup\": {speedup:.3},\n    \
         \"replay_store_hits\": {replay_hit_frames},\n    \
         \"results_identical\": true\n  }}"
    );
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    merge_section(&path, "backfill", &value);
    println!();
    println!("merged \"backfill\" into {}", path.display());
    let _ = std::fs::remove_dir_all(&dir);
}
