//! Table 7: aggregation queries (Q4 average cars on the crossing, Q5
//! average walking people) — VideoChat's answers vs VQPy's.
//!
//! Paper result: VideoChat over-counts (mean answers of 4.9-6.9 when the
//! true count never exceeds 4) with wild maxima (65-414); VQPy's averages
//! track the truth (0.89 / 0.66) with small maxima.

use vqpy_baselines::{MllmQuestion, MllmVariant, VideoChatSim};
use vqpy_bench::bench_scale;
use vqpy_bench::report::{section, table};
use vqpy_bench::workloads::{auburn_queries, bench_zoo, camera_video};
use vqpy_core::VqpySession;
use vqpy_models::Clock;
use vqpy_video::source::VideoSource;

fn main() {
    let scale = bench_scale();
    let seconds = 600.0 * scale;
    let video = camera_video("auburn", seconds, 2024);
    let scene = video.scene().unwrap().clone();
    let n_clips = seconds as u64 - 1;
    let fps = video.fps() as u64;
    println!("Table 7 reproduction: {n_clips} one-second clips");

    let questions = vec![
        (
            "Q4",
            MllmQuestion::AvgCarsOnCrossing {
                region: scene.intersection_region(),
            },
            3usize,
        ),
        ("Q5", MllmQuestion::AvgWalkingPeople, 4usize),
    ];
    let vqpy_queries = auburn_queries(&scene);
    let session = VqpySession::new(bench_zoo());

    let mut rows = Vec::new();
    for (label, q, vqpy_idx) in &questions {
        let mut cells = vec![label.to_string()];
        // Ground truth across the video, for reference.
        let truth_mean = {
            let mut sum = 0u64;
            let mut n = 0u64;
            for f in (0..video.frame_count()).step_by(5) {
                sum += q.count_on(&video.frame(f).truth);
                n += 1;
            }
            sum as f64 / n as f64
        };
        cells.push(format!("{truth_mean:.2}"));

        for variant in [MllmVariant::VideoChat7B, MllmVariant::VideoChat13BLowRes] {
            let sim = VideoChatSim::new(variant, 23);
            let clock = Clock::new();
            let mut answers = Vec::new();
            for c in 0..n_clips {
                let clip = video.clip(c as f64, (c + 1) as f64);
                if let Some(a) = sim.ask_count(&clip, q, &clock) {
                    answers.push(a);
                }
            }
            let preserved = answers.len() as f64 / n_clips as f64 * 100.0;
            let mean = answers.iter().sum::<f64>() / answers.len().max(1) as f64;
            let max = answers.iter().cloned().fold(0.0f64, f64::max);
            cells.push(format!("{mean:.2} / {max:.0} ({preserved:.0}% kept)"));
        }

        // VQPy: per-clip average of matched-object counts from one run.
        let result = session
            .execute(&vqpy_queries[*vqpy_idx].1, &video)
            .expect("vqpy runs");
        let mut per_frame_counts = vec![0u64; video.frame_count() as usize];
        for h in &result.frame_hits {
            per_frame_counts[h.frame as usize] = h.outputs.len() as u64;
        }
        let mut clip_avgs = Vec::new();
        for c in 0..n_clips {
            let lo = (c * fps) as usize;
            let hi = ((c + 1) * fps) as usize;
            let sum: u64 = per_frame_counts[lo..hi.min(per_frame_counts.len())]
                .iter()
                .sum();
            clip_avgs.push(sum as f64 / fps as f64);
        }
        let mean = clip_avgs.iter().sum::<f64>() / clip_avgs.len().max(1) as f64;
        let max = clip_avgs.iter().cloned().fold(0.0f64, f64::max);
        cells.push(format!("{mean:.2} / {max:.2}"));
        rows.push(cells);
    }

    section("Table 7: aggregation answers (mean / max per clip)");
    table(
        &[
            "query",
            "truth mean",
            "VideoChat-7B",
            "VideoChat-13B*",
            "VQPy",
        ],
        &rows,
    );
    println!(
        "paper: VideoChat means 4.9-6.9 with maxima 65-414; VQPy 0.89/0.66 with maxima 3.3/5.3"
    );
}
