//! Table 5: execution time per frame (virtual ms), VideoChat-7B /
//! VideoChat-13B (low-resource) vs VQPy vs VQPy-Opt.
//!
//! Paper result: VideoChat pays a heavy per-frame embedding precompute and
//! 72-3504 ms/frame per query; VQPy answers the same queries at ~32-112
//! ms/frame; sharing Q1-Q5 in one execution gives a further 3.4x
//! (VQPy-Opt), and registering a cheap ball filter plus a specialized
//! action filter brings Q6 from 112 to ~30 ms/frame at a small F1 cost.

use std::sync::Arc;
use vqpy_baselines::{MllmQuestion, MllmVariant, VideoChatSim};
use vqpy_bench::bench_scale;
use vqpy_bench::report::{section, table};
use vqpy_bench::workloads::{auburn_queries, bench_zoo, camera_video, hit_ball_query};
use vqpy_core::{BinaryFilterReg, SessionConfig, VqpySession};
use vqpy_models::Clock;
use vqpy_video::source::VideoSource;

fn per_frame(clock: &Clock, frames: u64) -> String {
    format!("{:.1}", clock.virtual_ms() / frames as f64)
}

fn main() {
    let scale = bench_scale();
    let seconds = 600.0 * scale;
    let video = camera_video("auburn", seconds, 2024);
    let frames = video.frame_count();
    let scene = video.scene().unwrap().clone();
    println!("Table 5 reproduction: {seconds:.0}s Auburn traffic @15fps ({frames} frames)");

    let questions = [
        MllmQuestion::PeopleOnCrosswalk {
            region: scene.crosswalk_region(),
        },
        MllmQuestion::CarsTurningLeft,
        MllmQuestion::RedCarPresent,
        MllmQuestion::AvgCarsOnCrossing {
            region: scene.intersection_region(),
        },
        MllmQuestion::AvgWalkingPeople,
    ];

    let mut rows: Vec<Vec<String>> = Vec::new();

    // VideoChat pre-computation phase (per-frame embedding).
    {
        let mut row = vec!["Pre".to_owned()];
        for variant in [MllmVariant::VideoChat7B, MllmVariant::VideoChat13BLowRes] {
            let sim = VideoChatSim::new(variant, 5);
            let clock = Clock::new();
            let clip = video.clip(0.0, 10.0_f64.min(seconds));
            sim.precompute(&clip, &clock);
            row.push(per_frame(&clock, clip.frame_count()));
        }
        row.push("N/A".into());
        row.push("N/A".into());
        rows.push(row);
    }

    // Q1-Q5: VideoChat asks per clip; VQPy runs each query individually.
    let vqpy_queries = auburn_queries(&scene);
    let mut vqpy_individual_total = 0.0;
    for (i, q) in questions.iter().enumerate() {
        let label = format!("Q{}", i + 1);
        let mut row = vec![label.clone()];
        for variant in [MllmVariant::VideoChat7B, MllmVariant::VideoChat13BLowRes] {
            let sim = VideoChatSim::new(variant, 5);
            let clock = Clock::new();
            // Ten one-second clips are enough to measure the per-frame rate.
            let mut clip_frames = 0;
            for s in 0..10 {
                let clip = video.clip(s as f64, (s + 1) as f64);
                clip_frames += clip.frame_count();
                match q {
                    MllmQuestion::AvgCarsOnCrossing { .. } | MllmQuestion::AvgWalkingPeople => {
                        let _ = sim.ask_count(&clip, q, &clock);
                    }
                    _ => {
                        let _ = sim.ask_bool(&clip, q, &clock);
                    }
                }
            }
            row.push(per_frame(&clock, clip_frames));
        }
        let session = VqpySession::new(bench_zoo());
        let _ = session
            .execute(&vqpy_queries[i].1, &video)
            .expect("vqpy runs");
        let ms_total = session.clock().virtual_ms();
        vqpy_individual_total += ms_total;
        row.push(format!("{:.1}", ms_total / frames as f64));
        row.push(String::new());
        rows.push(row);
    }

    // VQPy-Opt: Q1-Q5 in a single shared execution with reuse.
    {
        let session = VqpySession::new(bench_zoo());
        let qs: Vec<_> = vqpy_queries.iter().map(|(_, q)| Arc::clone(q)).collect();
        let _ = session.execute_shared(&qs, &video).expect("shared runs");
        let shared = session.clock().virtual_ms();
        rows.push(vec![
            "Q1-Q5 shared".into(),
            String::new(),
            String::new(),
            format!(
                "{:.1} (sum of individual)",
                vqpy_individual_total / frames as f64
            ),
            format!(
                "{:.1} ({:.1}x vs individual)",
                shared / frames as f64,
                vqpy_individual_total / shared
            ),
        ]);
    }

    // Q6: person-hits-ball interaction on V-COCO-style clips.
    {
        let q6_video = {
            let s = vqpy_video::Scene::generate(
                vqpy_video::presets::interaction_clips(),
                606,
                240.0 * scale,
            );
            vqpy_video::SyntheticVideo::new(s)
        };
        let q6_frames = q6_video.frame_count();
        let mut row = vec!["Q6".to_owned()];
        for variant in [MllmVariant::VideoChat7B, MllmVariant::VideoChat13BLowRes] {
            let sim = VideoChatSim::new(variant, 5);
            let clock = Clock::new();
            let clip = q6_video.clip(0.0, 5.0);
            let _ = sim.ask_bool(&clip, &MllmQuestion::PersonHitsBall, &clock);
            row.push(per_frame(&clock, clip.frame_count()));
        }
        // VQPy: detector + UPT HOI on every frame.
        let session = VqpySession::new(bench_zoo());
        let base = session
            .execute(&hit_ball_query(), &q6_video)
            .expect("q6 runs");
        row.push(per_frame(session.clock(), q6_frames));

        // VQPy-Opt: register the cheap ball filter and the specialized
        // action filter (§5.3's final optimization), let the planner pick.
        let opt_session = VqpySession::with_config(
            bench_zoo(),
            SessionConfig {
                accuracy_target: 0.75,
                // Hit events are rare; a longer canary stabilizes the F1
                // estimate for the filtered candidate plans.
                canary_seconds: 40.0,
                ..SessionConfig::default()
            },
        );
        opt_session
            .extensions()
            .register_binary_filter(BinaryFilterReg {
                schema: "Person".into(),
                model: "ball_presence_filter".into(),
            });
        opt_session
            .extensions()
            .register_binary_filter(BinaryFilterReg {
                schema: "Person".into(),
                model: "hit_action_filter".into(),
            });
        let opt = opt_session
            .execute(&hit_ball_query(), &q6_video)
            .expect("q6 opt runs");
        let f1_delta = vqpy_core::scoring::f1_frames(&opt.hit_frame_set(), &base.hit_frame_set());
        row.push(format!(
            "{} (F1 vs base {:.2})",
            per_frame(opt_session.clock(), q6_frames),
            f1_delta.f1
        ));
        rows.push(row);
    }

    section("Table 5: execution time per frame (virtual ms)");
    table(
        &[
            "query",
            "VideoChat-7B",
            "VideoChat-13B*",
            "VQPy",
            "VQPy-Opt",
        ],
        &rows,
    );
    println!("paper: Pre 38.4/1071; Q1-Q5 72-137 (7B) vs 32-48 (VQPy); shared 3.4x;");
    println!("       Q6 3503.8 (7B) vs 112.4 (VQPy) vs 30.0 (VQPy-Opt, -0.08 F1)");
}
