//! # vqpy-tracker
//!
//! Multi-object tracking substrate for the VQPy reproduction: a
//! constant-velocity Kalman filter, an O(n^3) Hungarian assignment solver,
//! and a SORT-style tracker combining them.
//!
//! This is the "lightweight tracker based on the Kalman filter" of §4.2:
//! the backend uses it both as the `object tracker` operator (motion edges,
//! stateful properties) and to key intrinsic-property reuse by track id.
//!
//! ## Example
//!
//! ```
//! use vqpy_tracker::{SortTracker, TrackerParams};
//! use vqpy_video::geometry::{BBox, Point};
//!
//! let mut tracker = SortTracker::new(TrackerParams::default());
//! let frame1 = [(BBox::from_center(Point::new(100.0, 50.0), 40.0, 20.0), "car")];
//! let frame2 = [(BBox::from_center(Point::new(105.0, 50.0), 40.0, 20.0), "car")];
//! let a = tracker.update(&frame1);
//! let b = tracker.update(&frame2);
//! assert_eq!(a[0].track_id, b[0].track_id); // same physical object
//! ```

pub mod hungarian;
pub mod kalman;
pub mod matrix;
pub mod sort;

pub use kalman::KalmanFilter;
pub use sort::{SortTracker, TrackId, TrackUpdate, TrackerParams};
