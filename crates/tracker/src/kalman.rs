//! Constant-velocity Kalman filter over bounding boxes.
//!
//! State is `[cx, cy, w, h, vcx, vcy, vw, vh]`; measurements are box
//! `[cx, cy, w, h]`. This is the "lightweight tracker based on the Kalman
//! filter" that §4.2 uses to re-identify objects across frames and unlock
//! intrinsic-property reuse.

use crate::matrix::{add, identity, invert, matmul, matvec, sub, transpose, Mat};
use vqpy_video::geometry::{BBox, Point};

const DIM_X: usize = 8;
const DIM_Z: usize = 4;

/// A per-track Kalman filter.
#[derive(Debug, Clone)]
pub struct KalmanFilter {
    x: [f32; DIM_X],
    p: Mat<DIM_X, DIM_X>,
    f: Mat<DIM_X, DIM_X>,
    h: Mat<DIM_Z, DIM_X>,
    q: Mat<DIM_X, DIM_X>,
    r: Mat<DIM_Z, DIM_Z>,
}

fn measurement_of(bbox: &BBox) -> [f32; DIM_Z] {
    let c = bbox.center();
    [c.x, c.y, bbox.width(), bbox.height()]
}

impl KalmanFilter {
    /// Initializes a filter at a first observation.
    pub fn new(bbox: &BBox) -> Self {
        let z = measurement_of(bbox);
        let mut x = [0.0; DIM_X];
        x[..4].copy_from_slice(&z);

        // Transition: position += velocity each step.
        let mut f = identity::<DIM_X>();
        for i in 0..4 {
            f[i][i + 4] = 1.0;
        }
        // Observation: we see position and size.
        let mut h = [[0.0; DIM_X]; DIM_Z];
        for (i, row) in h.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        // Covariances: generous initial velocity uncertainty, modest
        // process and measurement noise (tuned for ~px-scale jitter).
        let mut p = identity::<DIM_X>();
        for (i, row) in p.iter_mut().enumerate() {
            row[i] = if i < 4 { 10.0 } else { 1000.0 };
        }
        let mut q = identity::<DIM_X>();
        for (i, row) in q.iter_mut().enumerate() {
            row[i] = if i < 4 { 1.0 } else { 0.1 };
        }
        let mut r = identity::<DIM_Z>();
        for (i, row) in r.iter_mut().enumerate() {
            row[i] = 4.0;
        }
        Self { x, p, f, h, q, r }
    }

    /// Advances the state one frame.
    pub fn predict(&mut self) {
        self.x = matvec(&self.f, &self.x);
        // Sizes must stay positive even under negative size velocity.
        self.x[2] = self.x[2].max(1.0);
        self.x[3] = self.x[3].max(1.0);
        let fp = matmul(&self.f, &self.p);
        self.p = add(&matmul(&fp, &transpose(&self.f)), &self.q);
    }

    /// Folds in an observation.
    pub fn update(&mut self, bbox: &BBox) {
        let z = measurement_of(bbox);
        let hx = matvec(&self.h, &self.x);
        let mut y = [0.0; DIM_Z];
        for i in 0..DIM_Z {
            y[i] = z[i] - hx[i];
        }
        let ph_t = matmul(&self.p, &transpose(&self.h));
        let s = add(&matmul(&self.h, &ph_t), &self.r);
        let Some(s_inv) = invert(&s) else {
            // Degenerate covariance: fall back to trusting the measurement.
            self.x[..4].copy_from_slice(&z);
            return;
        };
        let k = matmul(&ph_t, &s_inv);
        let ky = matvec(&k, &y);
        for (x, dy) in self.x.iter_mut().zip(ky.iter()) {
            *x += dy;
        }
        let kh = matmul(&k, &self.h);
        let i_kh = sub(&identity::<DIM_X>(), &kh);
        self.p = matmul(&i_kh, &self.p);
    }

    /// Current state as a bounding box.
    pub fn bbox(&self) -> BBox {
        BBox::from_center(
            Point::new(self.x[0], self.x[1]),
            self.x[2].max(1.0),
            self.x[3].max(1.0),
        )
    }

    /// Estimated center velocity in pixels per frame.
    pub fn velocity(&self) -> Point {
        Point::new(self.x[4], self.x[5])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_constant_velocity_motion() {
        let mut kf = KalmanFilter::new(&BBox::from_center(Point::new(100.0, 100.0), 40.0, 20.0));
        // Object moving +5 px/frame in x.
        for step in 1..=30 {
            kf.predict();
            let truth = BBox::from_center(Point::new(100.0 + 5.0 * step as f32, 100.0), 40.0, 20.0);
            kf.update(&truth);
        }
        let v = kf.velocity();
        assert!((v.x - 5.0).abs() < 0.5, "vx estimate {v:?}");
        assert!(v.y.abs() < 0.5, "vy estimate {v:?}");
        let c = kf.bbox().center();
        assert!((c.x - 250.0).abs() < 3.0);
    }

    #[test]
    fn prediction_extrapolates() {
        let mut kf = KalmanFilter::new(&BBox::from_center(Point::new(0.0, 0.0), 10.0, 10.0));
        for step in 1..=10 {
            kf.predict();
            kf.update(&BBox::from_center(
                Point::new(step as f32 * 3.0, 0.0),
                10.0,
                10.0,
            ));
        }
        // Two pure predictions should continue the motion.
        kf.predict();
        kf.predict();
        let c = kf.bbox().center();
        assert!((c.x - 36.0).abs() < 3.0, "extrapolated center {c:?}");
    }

    #[test]
    fn sizes_stay_positive() {
        let mut kf = KalmanFilter::new(&BBox::from_center(Point::new(0.0, 0.0), 5.0, 5.0));
        // Shrinking observations drive negative size velocity.
        for step in 1..=10 {
            kf.predict();
            let s = (5.0 - step as f32).max(0.5);
            kf.update(&BBox::from_center(Point::new(0.0, 0.0), s, s));
        }
        for _ in 0..20 {
            kf.predict();
        }
        assert!(kf.bbox().width() >= 1.0);
        assert!(kf.bbox().height() >= 1.0);
    }

    #[test]
    fn stationary_object_has_near_zero_velocity() {
        let b = BBox::from_center(Point::new(50.0, 60.0), 30.0, 30.0);
        let mut kf = KalmanFilter::new(&b);
        for _ in 0..20 {
            kf.predict();
            kf.update(&b);
        }
        assert!(kf.velocity().norm() < 0.2);
        assert!(kf.bbox().center().distance(&b.center()) < 1.0);
    }
}
