//! Minimal fixed-size matrix arithmetic for the Kalman filter.
//!
//! Dimensions are const generics, so shape errors are compile errors and no
//! allocation happens on the tracking hot path.

/// An `R x C` matrix of `f32`, stored row-major.
pub type Mat<const R: usize, const C: usize> = [[f32; C]; R];

/// The `N x N` identity matrix.
pub fn identity<const N: usize>() -> Mat<N, N> {
    let mut m = [[0.0; N]; N];
    for (i, row) in m.iter_mut().enumerate() {
        row[i] = 1.0;
    }
    m
}

/// Matrix product `a * b`.
pub fn matmul<const R: usize, const K: usize, const C: usize>(
    a: &Mat<R, K>,
    b: &Mat<K, C>,
) -> Mat<R, C> {
    let mut out = [[0.0; C]; R];
    for i in 0..R {
        for k in 0..K {
            let aik = a[i][k];
            if aik == 0.0 {
                continue;
            }
            for j in 0..C {
                out[i][j] += aik * b[k][j];
            }
        }
    }
    out
}

/// Matrix-vector product `a * v`.
pub fn matvec<const R: usize, const C: usize>(a: &Mat<R, C>, v: &[f32; C]) -> [f32; R] {
    let mut out = [0.0; R];
    for i in 0..R {
        for j in 0..C {
            out[i] += a[i][j] * v[j];
        }
    }
    out
}

/// Transpose.
pub fn transpose<const R: usize, const C: usize>(a: &Mat<R, C>) -> Mat<C, R> {
    let mut out = [[0.0; R]; C];
    for i in 0..R {
        for j in 0..C {
            out[j][i] = a[i][j];
        }
    }
    out
}

/// Element-wise sum.
pub fn add<const R: usize, const C: usize>(a: &Mat<R, C>, b: &Mat<R, C>) -> Mat<R, C> {
    let mut out = [[0.0; C]; R];
    for i in 0..R {
        for j in 0..C {
            out[i][j] = a[i][j] + b[i][j];
        }
    }
    out
}

/// Element-wise difference `a - b`.
pub fn sub<const R: usize, const C: usize>(a: &Mat<R, C>, b: &Mat<R, C>) -> Mat<R, C> {
    let mut out = [[0.0; C]; R];
    for i in 0..R {
        for j in 0..C {
            out[i][j] = a[i][j] - b[i][j];
        }
    }
    out
}

/// Inverse by Gauss-Jordan elimination with partial pivoting.
///
/// Returns `None` for (near-)singular matrices.
pub fn invert<const N: usize>(a: &Mat<N, N>) -> Option<Mat<N, N>> {
    let mut aug = [[0.0f64; 16]; 8]; // generous static scratch: N <= 8
    assert!(N <= 8, "invert supports N <= 8");
    for i in 0..N {
        for j in 0..N {
            aug[i][j] = a[i][j] as f64;
        }
        aug[i][N + i] = 1.0;
    }
    for col in 0..N {
        // Partial pivot.
        let mut pivot = col;
        for r in (col + 1)..N {
            if aug[r][col].abs() > aug[pivot][col].abs() {
                pivot = r;
            }
        }
        if aug[pivot][col].abs() < 1e-12 {
            return None;
        }
        aug.swap(pivot, col);
        let div = aug[col][col];
        for v in aug[col].iter_mut() {
            *v /= div;
        }
        for r in 0..N {
            if r == col {
                continue;
            }
            let factor = aug[r][col];
            if factor == 0.0 {
                continue;
            }
            let pivot_row = aug[col];
            for (v, pv) in aug[r].iter_mut().zip(pivot_row.iter()) {
                *v -= factor * pv;
            }
        }
    }
    let mut out = [[0.0f32; N]; N];
    for i in 0..N {
        for j in 0..N {
            out[i][j] = aug[i][N + j] as f32;
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq<const R: usize, const C: usize>(a: &Mat<R, C>, b: &Mat<R, C>, tol: f32) -> bool {
        (0..R).all(|i| (0..C).all(|j| (a[i][j] - b[i][j]).abs() < tol))
    }

    #[test]
    fn identity_multiplication() {
        let a: Mat<3, 3> = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 10.0]];
        let i = identity::<3>();
        assert!(approx_eq(&matmul(&a, &i), &a, 1e-6));
        assert!(approx_eq(&matmul(&i, &a), &a, 1e-6));
    }

    #[test]
    fn inverse_roundtrip() {
        let a: Mat<3, 3> = [[4.0, 7.0, 2.0], [3.0, 6.0, 1.0], [2.0, 5.0, 3.0]];
        let inv = invert(&a).expect("invertible");
        let prod = matmul(&a, &inv);
        assert!(approx_eq(&prod, &identity::<3>(), 1e-4), "{prod:?}");
    }

    #[test]
    fn singular_matrix_returns_none() {
        let a: Mat<2, 2> = [[1.0, 2.0], [2.0, 4.0]];
        assert!(invert(&a).is_none());
    }

    #[test]
    fn transpose_twice_is_identity_op() {
        let a: Mat<2, 3> = [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]];
        assert_eq!(transpose(&transpose(&a)), a);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a: Mat<2, 2> = [[1.0, 2.0], [3.0, 4.0]];
        let v = [5.0, 6.0];
        let got = matvec(&a, &v);
        assert_eq!(got, [17.0, 39.0]);
    }

    #[test]
    fn add_sub_inverse() {
        let a: Mat<2, 2> = [[1.0, 2.0], [3.0, 4.0]];
        let b: Mat<2, 2> = [[0.5, 0.5], [0.5, 0.5]];
        assert_eq!(sub(&add(&a, &b), &b), a);
    }

    #[test]
    fn random_invertible_roundtrip() {
        for seed in 0u64..500 {
            // Build a diagonally-dominant (hence invertible) 4x4 matrix.
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x % 1000) as f32) / 100.0 - 5.0
            };
            let mut a: Mat<4, 4> = [[0.0; 4]; 4];
            for (i, row) in a.iter_mut().enumerate() {
                for v in row.iter_mut() {
                    *v = next();
                }
                row[i] += 25.0;
            }
            let inv = invert(&a).expect("diagonally dominant is invertible");
            let prod = matmul(&a, &inv);
            assert!(approx_eq(&prod, &identity::<4>(), 1e-2), "seed {seed}");
        }
    }
}
