//! Hungarian (Kuhn-Munkres) algorithm for minimum-cost assignment.
//!
//! O(n^3) potentials formulation. Rectangular matrices are supported by
//! conceptually padding with `FORBIDDEN` cost; pairs at `FORBIDDEN` are
//! reported as unassigned.

/// Cost marking an (row, col) pair as impossible to match.
pub const FORBIDDEN: f64 = 1e18;

/// Solves min-cost assignment for `cost[row][col]`.
///
/// Returns, for each row, the assigned column (or `None` when the row is
/// unassigned because columns ran out or only forbidden pairs remained).
///
/// # Panics
///
/// Panics if rows have inconsistent lengths.
pub fn solve(cost: &[Vec<f64>]) -> Vec<Option<usize>> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    let m = cost[0].len();
    for row in cost {
        assert_eq!(row.len(), m, "cost matrix rows must have equal length");
    }
    if m == 0 {
        return vec![None; n];
    }

    // The potentials algorithm needs rows <= cols; pad virtually by
    // transposing when needed.
    if n > m {
        let t: Vec<Vec<f64>> = (0..m)
            .map(|j| (0..n).map(|i| cost[i][j]).collect())
            .collect();
        let col_assign = solve(&t);
        let mut out = vec![None; n];
        for (j, a) in col_assign.iter().enumerate() {
            if let Some(i) = a {
                out[*i] = Some(j);
            }
        }
        return out;
    }

    // 1-indexed arrays per the classical formulation.
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut out = vec![None; n];
    for j in 1..=m {
        if p[j] != 0 {
            let i = p[j] - 1;
            if cost[i][j - 1] < FORBIDDEN / 2.0 {
                out[i] = Some(j - 1);
            }
        }
    }
    out
}

/// Total cost of an assignment (ignoring unassigned rows).
pub fn assignment_cost(cost: &[Vec<f64>], assignment: &[Option<usize>]) -> f64 {
    assignment
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.map(|j| cost[i][j]))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive minimum over all row->col injections, for validation.
    fn brute_force(cost: &[Vec<f64>]) -> f64 {
        let n = cost.len();
        let m = cost[0].len();
        fn rec(cost: &[Vec<f64>], row: usize, used: &mut [bool], acc: f64, best: &mut f64) {
            let n = cost.len();
            let m = cost[0].len();
            if row == n {
                *best = best.min(acc);
                return;
            }
            // Option: leave this row unassigned only if rows > cols handled
            // elsewhere; here n <= m in tests, so always assign.
            for j in 0..m {
                if !used[j] {
                    used[j] = true;
                    rec(cost, row + 1, used, acc + cost[row][j], best);
                    used[j] = false;
                }
            }
            let _ = n;
        }
        let mut best = f64::INFINITY;
        rec(cost, 0, &mut vec![false; m], 0.0, &mut best);
        let _ = n;
        best
    }

    #[test]
    fn simple_square() {
        let cost = vec![
            vec![4.0, 1.0, 3.0],
            vec![2.0, 0.0, 5.0],
            vec![3.0, 2.0, 2.0],
        ];
        let a = solve(&cost);
        assert_eq!(assignment_cost(&cost, &a), 5.0);
        // All rows assigned to distinct columns.
        let mut cols: Vec<usize> = a.iter().map(|x| x.unwrap()).collect();
        cols.sort_unstable();
        cols.dedup();
        assert_eq!(cols.len(), 3);
    }

    #[test]
    fn rectangular_wide() {
        let cost = vec![vec![10.0, 1.0, 7.0, 8.0], vec![1.0, 10.0, 7.0, 8.0]];
        let a = solve(&cost);
        assert_eq!(a, vec![Some(1), Some(0)]);
    }

    #[test]
    fn rectangular_tall_leaves_rows_unassigned() {
        let cost = vec![vec![1.0], vec![2.0], vec![3.0]];
        let a = solve(&cost);
        let assigned: Vec<_> = a.iter().filter(|x| x.is_some()).collect();
        assert_eq!(assigned.len(), 1);
        assert_eq!(a[0], Some(0), "cheapest row should win the only column");
    }

    #[test]
    fn forbidden_pairs_stay_unmatched() {
        let cost = vec![vec![FORBIDDEN, 1.0], vec![FORBIDDEN, FORBIDDEN]];
        let a = solve(&cost);
        assert_eq!(a[0], Some(1));
        assert_eq!(a[1], None);
    }

    #[test]
    fn empty_inputs() {
        assert!(solve(&[]).is_empty());
        let a = solve(&[vec![], vec![]]);
        assert_eq!(a, vec![None, None]);
    }

    #[test]
    fn matches_brute_force_on_small_matrices() {
        for seed in 0u64..300 {
            for n in 1usize..5 {
                for extra in 0usize..3 {
                    let m = n + extra;
                    let mut x = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(11);
                    let mut next = || {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        (x % 100) as f64
                    };
                    let cost: Vec<Vec<f64>> =
                        (0..n).map(|_| (0..m).map(|_| next()).collect()).collect();
                    let a = solve(&cost);
                    // Every row assigned (n <= m, no forbidden entries)...
                    assert!(a.iter().all(|x| x.is_some()), "seed {seed} n {n} m {m}");
                    // ...to distinct columns...
                    let mut cols: Vec<usize> = a.iter().map(|x| x.unwrap()).collect();
                    cols.sort_unstable();
                    let dedup_len = {
                        let mut c = cols.clone();
                        c.dedup();
                        c.len()
                    };
                    assert_eq!(dedup_len, cols.len(), "seed {seed} n {n} m {m}");
                    // ...at the optimal cost.
                    let got = assignment_cost(&cost, &a);
                    let want = brute_force(&cost);
                    assert!(
                        (got - want).abs() < 1e-9,
                        "got {got} want {want} (seed {seed} n {n} m {m})"
                    );
                }
            }
        }
    }
}
