//! SORT-style multi-object tracker: Kalman prediction + IoU-cost Hungarian
//! matching + track lifecycle management.

use crate::hungarian::{self, FORBIDDEN};
use crate::kalman::KalmanFilter;
use vqpy_video::geometry::{BBox, Point};

/// Tracker tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrackerParams {
    /// Frames a track survives without a matched detection.
    pub max_age: u32,
    /// Matched updates before a track is *confirmed*.
    pub min_hits: u32,
    /// Minimum IoU for a detection-track match.
    pub iou_threshold: f32,
}

impl Default for TrackerParams {
    fn default() -> Self {
        Self {
            max_age: 15,
            min_hits: 2,
            iou_threshold: 0.2,
        }
    }
}

/// Stable identifier of a tracked object (unique within one tracker).
pub type TrackId = u64;

#[derive(Debug, Clone)]
struct Track {
    id: TrackId,
    class_label: String,
    kf: KalmanFilter,
    hits: u32,
    time_since_update: u32,
}

/// Result of matching one detection on one frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrackUpdate {
    /// The stable track id the detection was associated with.
    pub track_id: TrackId,
    /// Whether the track has accumulated `min_hits` matches. Stateful
    /// properties should only be trusted on confirmed tracks.
    pub confirmed: bool,
    /// Whether this track was created for this detection on this frame
    /// (i.e. the object has not been seen before). Intrinsic-property reuse
    /// keys off this: only fresh tracks need full property computation.
    pub is_new: bool,
}

/// A SORT-style tracker over labeled boxes.
///
/// `Clone` snapshots the full tracker state (tracks, Kalman filters, id
/// counter); the serving layer uses this to checkpoint operator state
/// before a fallible segment so a panicking worker can be restarted
/// without identity drift.
#[derive(Debug, Clone)]
pub struct SortTracker {
    params: TrackerParams,
    tracks: Vec<Track>,
    next_id: TrackId,
}

impl SortTracker {
    /// Creates a tracker with the given parameters.
    pub fn new(params: TrackerParams) -> Self {
        Self {
            params,
            tracks: Vec::new(),
            next_id: 1,
        }
    }

    /// Number of live (not yet expired) tracks.
    pub fn live_tracks(&self) -> usize {
        self.tracks.len()
    }

    /// Estimated velocity (px/frame) of a live track, if known.
    pub fn velocity_of(&self, id: TrackId) -> Option<Point> {
        self.tracks
            .iter()
            .find(|t| t.id == id)
            .map(|t| t.kf.velocity())
    }

    /// Advances one frame: predicts all tracks, matches `detections`
    /// (as `(bbox, class_label)` pairs), creates tracks for unmatched
    /// detections, ages out stale tracks.
    ///
    /// Returns one [`TrackUpdate`] per detection, in input order.
    pub fn update(&mut self, detections: &[(BBox, &str)]) -> Vec<TrackUpdate> {
        for t in &mut self.tracks {
            t.kf.predict();
            t.time_since_update += 1;
        }

        // Cost matrix: detections x tracks, 1 - IoU, class mismatch forbidden.
        let assignment = if self.tracks.is_empty() || detections.is_empty() {
            vec![None; detections.len()]
        } else {
            let cost: Vec<Vec<f64>> = detections
                .iter()
                .map(|(bbox, label)| {
                    self.tracks
                        .iter()
                        .map(|t| {
                            if t.class_label != *label {
                                return FORBIDDEN;
                            }
                            let iou = bbox.iou(&t.kf.bbox());
                            if iou < self.params.iou_threshold {
                                FORBIDDEN
                            } else {
                                1.0 - iou as f64
                            }
                        })
                        .collect()
                })
                .collect();
            hungarian::solve(&cost)
        };

        let mut updates = Vec::with_capacity(detections.len());
        for (di, (bbox, label)) in detections.iter().enumerate() {
            match assignment[di] {
                Some(ti) => {
                    let t = &mut self.tracks[ti];
                    t.kf.update(bbox);
                    t.hits += 1;
                    t.time_since_update = 0;
                    updates.push(TrackUpdate {
                        track_id: t.id,
                        confirmed: t.hits >= self.params.min_hits,
                        is_new: false,
                    });
                }
                None => {
                    let id = self.next_id;
                    self.next_id += 1;
                    self.tracks.push(Track {
                        id,
                        class_label: (*label).to_owned(),
                        kf: KalmanFilter::new(bbox),
                        hits: 1,
                        time_since_update: 0,
                    });
                    updates.push(TrackUpdate {
                        track_id: id,
                        confirmed: self.params.min_hits <= 1,
                        is_new: true,
                    });
                }
            }
        }

        let max_age = self.params.max_age;
        self.tracks.retain(|t| t.time_since_update <= max_age);
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes_at(x: f32) -> BBox {
        BBox::from_center(Point::new(x, 100.0), 40.0, 20.0)
    }

    #[test]
    fn single_object_keeps_its_id() {
        let mut tr = SortTracker::new(TrackerParams::default());
        let mut ids = Vec::new();
        for step in 0..20 {
            let det = [(boxes_at(50.0 + step as f32 * 5.0), "car")];
            let up = tr.update(&det);
            ids.push(up[0].track_id);
        }
        assert!(
            ids.windows(2).all(|w| w[0] == w[1]),
            "id must be stable: {ids:?}"
        );
        assert!(tr.velocity_of(ids[0]).unwrap().x > 3.0);
    }

    #[test]
    fn two_objects_get_distinct_ids() {
        let mut tr = SortTracker::new(TrackerParams::default());
        for step in 0..10 {
            let x = step as f32 * 5.0;
            let det = [
                (boxes_at(50.0 + x), "car"),
                (
                    BBox::from_center(Point::new(500.0 - x, 300.0), 40.0, 20.0),
                    "car",
                ),
            ];
            let up = tr.update(&det);
            assert_ne!(up[0].track_id, up[1].track_id);
        }
        assert_eq!(tr.live_tracks(), 2);
    }

    #[test]
    fn class_labels_do_not_mix() {
        let mut tr = SortTracker::new(TrackerParams::default());
        // A car and a person at the same place must not share a track.
        let det = [(boxes_at(100.0), "car")];
        let a = tr.update(&det);
        let det2 = [(boxes_at(102.0), "person")];
        let b = tr.update(&det2);
        assert_ne!(a[0].track_id, b[0].track_id);
    }

    #[test]
    fn confirmation_needs_min_hits() {
        let mut tr = SortTracker::new(TrackerParams {
            min_hits: 3,
            ..TrackerParams::default()
        });
        let u1 = tr.update(&[(boxes_at(100.0), "car")]);
        assert!(!u1[0].confirmed);
        assert!(u1[0].is_new);
        let u2 = tr.update(&[(boxes_at(105.0), "car")]);
        assert!(!u2[0].confirmed);
        assert!(!u2[0].is_new);
        let u3 = tr.update(&[(boxes_at(110.0), "car")]);
        assert!(u3[0].confirmed);
    }

    #[test]
    fn occlusion_gap_is_bridged() {
        let mut tr = SortTracker::new(TrackerParams {
            max_age: 10,
            ..TrackerParams::default()
        });
        let mut last_id = 0;
        for step in 0..10 {
            let up = tr.update(&[(boxes_at(50.0 + step as f32 * 5.0), "car")]);
            last_id = up[0].track_id;
        }
        // 5 missed frames (occlusion), object keeps moving.
        for _ in 0..5 {
            tr.update(&[]);
        }
        let up = tr.update(&[(boxes_at(50.0 + 15.0 * 5.0), "car")]);
        assert_eq!(
            up[0].track_id, last_id,
            "Kalman prediction should bridge the gap"
        );
        assert!(!up[0].is_new);
    }

    #[test]
    fn stale_tracks_expire() {
        let mut tr = SortTracker::new(TrackerParams {
            max_age: 3,
            ..TrackerParams::default()
        });
        tr.update(&[(boxes_at(100.0), "car")]);
        assert_eq!(tr.live_tracks(), 1);
        for _ in 0..5 {
            tr.update(&[]);
        }
        assert_eq!(tr.live_tracks(), 0);
        // Same place later => a brand-new id.
        let up = tr.update(&[(boxes_at(100.0), "car")]);
        assert!(up[0].is_new);
    }

    #[test]
    fn crossing_objects_keep_identities() {
        let mut tr = SortTracker::new(TrackerParams::default());
        let mut id_a = 0;
        let mut id_b = 0;
        // Two objects on parallel-ish lanes passing each other; IoU matching
        // plus prediction should keep them separate.
        for step in 0..40 {
            let x = step as f32 * 8.0;
            let a = BBox::from_center(Point::new(x, 100.0), 40.0, 20.0);
            let b = BBox::from_center(Point::new(320.0 - x, 140.0), 40.0, 20.0);
            let up = tr.update(&[(a, "car"), (b, "car")]);
            if step == 0 {
                id_a = up[0].track_id;
                id_b = up[1].track_id;
            } else {
                assert_eq!(up[0].track_id, id_a, "step {step}");
                assert_eq!(up[1].track_id, id_b, "step {step}");
            }
        }
    }
}
