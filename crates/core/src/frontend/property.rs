//! Properties on VObjs: stateless, stateful, and intrinsic.
//!
//! Mirrors the paper's `@stateless` / `@stateful(input=..., history_len=...)`
//! annotations (Figure 2). A property is computed either by a model from the
//! zoo, by native code over its dependencies' (histories of) values, or is
//! one of the built-ins every detected object carries.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use vqpy_models::{Value, ValueKind};

/// Whether a property needs cross-frame history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyKind {
    /// Depends only on the current frame. `intrinsic` marks it constant for
    /// the lifetime of the object (the `intrinsic=True` annotation of §4.2),
    /// unlocking object-level computation reuse.
    Stateless { intrinsic: bool },
    /// Needs the last `history_len` samples of each dependency (including
    /// the current frame's) before it can produce a value.
    Stateful { history_len: usize },
}

impl PropertyKind {
    /// Whether the property is intrinsic (constant per object).
    pub fn is_intrinsic(&self) -> bool {
        matches!(self, PropertyKind::Stateless { intrinsic: true })
    }

    /// Whether the property needs tracked history.
    pub fn is_stateful(&self) -> bool {
        matches!(self, PropertyKind::Stateful { .. })
    }
}

/// Properties every detected VObj carries without computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BuiltinProp {
    /// Bounding box (`Value::BBox`).
    Bbox,
    /// Detector confidence (`Value::Float`).
    Score,
    /// Detector class label (`Value::Str`).
    ClassLabel,
    /// Tracker identity (`Value::Int`); `Null` until tracked.
    TrackId,
    /// Box center (`Value::Point`).
    Center,
}

impl BuiltinProp {
    /// The reserved property name.
    pub fn name(&self) -> &'static str {
        match self {
            BuiltinProp::Bbox => "bbox",
            BuiltinProp::Score => "score",
            BuiltinProp::ClassLabel => "class_label",
            BuiltinProp::TrackId => "track_id",
            BuiltinProp::Center => "center",
        }
    }

    /// Resolves a reserved name.
    pub fn from_name(name: &str) -> Option<BuiltinProp> {
        match name {
            "bbox" => Some(BuiltinProp::Bbox),
            "score" => Some(BuiltinProp::Score),
            "class_label" => Some(BuiltinProp::ClassLabel),
            "track_id" => Some(BuiltinProp::TrackId),
            "center" => Some(BuiltinProp::Center),
            _ => None,
        }
    }

    /// The kind of value this built-in carries (well-known for every
    /// built-in, which is what makes typed handles on them infallible).
    pub fn kind(&self) -> ValueKind {
        match self {
            BuiltinProp::Bbox => ValueKind::BBox,
            BuiltinProp::Score => ValueKind::Float,
            BuiltinProp::ClassLabel => ValueKind::Str,
            BuiltinProp::TrackId => ValueKind::Int,
            BuiltinProp::Center => ValueKind::Point,
        }
    }
}

/// Inputs available to a native property function.
#[derive(Debug)]
pub struct PropertyCtx<'a> {
    /// Per-dependency history of values, oldest first, current last.
    /// Stateless properties see exactly one element per dependency.
    pub deps: &'a HashMap<String, Vec<Value>>,
    /// Video frame rate, for time-based computations.
    pub fps: u32,
}

impl<'a> PropertyCtx<'a> {
    /// The current value of dependency `name` (`Null` if missing).
    pub fn dep(&self, name: &str) -> Value {
        self.deps
            .get(name)
            .and_then(|h| h.last().cloned())
            .unwrap_or(Value::Null)
    }

    /// Full history of dependency `name`, oldest first.
    pub fn dep_history(&self, name: &str) -> &[Value] {
        self.deps.get(name).map(|h| h.as_slice()).unwrap_or(&[])
    }
}

/// A native property implementation.
pub type NativeFn = Arc<dyn Fn(&PropertyCtx<'_>) -> Value + Send + Sync>;

/// How a property's value is produced.
#[derive(Clone)]
pub enum PropertySource {
    /// A classifier model from the zoo, applied to the object's crop.
    Model(String),
    /// Native code over dependency values.
    Native(NativeFn),
    /// One of the built-ins.
    Builtin(BuiltinProp),
}

impl fmt::Debug for PropertySource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropertySource::Model(m) => write!(f, "Model({m})"),
            PropertySource::Native(_) => write!(f, "Native(<fn>)"),
            PropertySource::Builtin(b) => write!(f, "Builtin({})", b.name()),
        }
    }
}

/// A property definition on a VObj schema.
#[derive(Debug, Clone)]
pub struct PropertyDef {
    pub name: String,
    pub kind: PropertyKind,
    /// Names of properties (on the same VObj, possibly inherited) whose
    /// values this property consumes. Model properties implicitly depend on
    /// the object's crop and need no declared deps.
    pub deps: Vec<String>,
    pub source: PropertySource,
    /// The declared kind of values this property produces, when the schema
    /// author states one (via [`PropertyDef::with_kind`]). Typed `Prop<T>`
    /// handles are checked against it at handle-creation time; `None`
    /// defers the check to row-decode time.
    pub value_kind: Option<ValueKind>,
}

impl PropertyDef {
    /// A stateless model property (e.g. `color` via `"color_detect"`).
    pub fn stateless_model(
        name: impl Into<String>,
        model: impl Into<String>,
        intrinsic: bool,
    ) -> Self {
        Self {
            name: name.into(),
            kind: PropertyKind::Stateless { intrinsic },
            deps: Vec::new(),
            source: PropertySource::Model(model.into()),
            value_kind: None,
        }
    }

    /// A stateless native property over same-frame dependencies.
    pub fn stateless_native(
        name: impl Into<String>,
        deps: &[&str],
        intrinsic: bool,
        f: NativeFn,
    ) -> Self {
        Self {
            name: name.into(),
            kind: PropertyKind::Stateless { intrinsic },
            deps: deps.iter().map(|s| s.to_string()).collect(),
            source: PropertySource::Native(f),
            value_kind: None,
        }
    }

    /// A stateful native property needing `history_len` samples of its deps.
    pub fn stateful_native(
        name: impl Into<String>,
        deps: &[&str],
        history_len: usize,
        f: NativeFn,
    ) -> Self {
        assert!(history_len >= 1, "history_len must be at least 1");
        Self {
            name: name.into(),
            kind: PropertyKind::Stateful { history_len },
            deps: deps.iter().map(|s| s.to_string()).collect(),
            source: PropertySource::Native(f),
            value_kind: None,
        }
    }

    /// Declares the kind of values this property produces, enabling
    /// typed-handle checking at `Prop<T>` creation time.
    pub fn with_kind(mut self, kind: ValueKind) -> Self {
        self.value_kind = Some(kind);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_names_roundtrip() {
        for b in [
            BuiltinProp::Bbox,
            BuiltinProp::Score,
            BuiltinProp::ClassLabel,
            BuiltinProp::TrackId,
            BuiltinProp::Center,
        ] {
            assert_eq!(BuiltinProp::from_name(b.name()), Some(b));
        }
        assert_eq!(BuiltinProp::from_name("nope"), None);
    }

    #[test]
    fn ctx_dep_access() {
        let mut deps = HashMap::new();
        deps.insert("center".to_owned(), vec![Value::Int(1), Value::Int(2)]);
        let ctx = PropertyCtx {
            deps: &deps,
            fps: 15,
        };
        assert_eq!(ctx.dep("center"), Value::Int(2));
        assert_eq!(ctx.dep_history("center").len(), 2);
        assert_eq!(ctx.dep("missing"), Value::Null);
        assert!(ctx.dep_history("missing").is_empty());
    }

    #[test]
    fn kind_flags() {
        assert!(PropertyKind::Stateless { intrinsic: true }.is_intrinsic());
        assert!(!PropertyKind::Stateless { intrinsic: false }.is_intrinsic());
        assert!(PropertyKind::Stateful { history_len: 5 }.is_stateful());
        assert!(!PropertyKind::Stateful { history_len: 5 }.is_intrinsic());
    }

    #[test]
    #[should_panic(expected = "history_len")]
    fn stateful_requires_history() {
        let f: NativeFn = Arc::new(|_| Value::Null);
        let _ = PropertyDef::stateful_native("v", &["bbox"], 0, f);
    }
}
