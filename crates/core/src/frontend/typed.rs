//! The typed v2 frontend: compile-checked predicates and typed result rows.
//!
//! The paper's object-oriented claim is that queries are authored against
//! *objects with typed properties* (§3, Figures 2/5). This module realizes
//! that claim in Rust's type system: a [`Schema<V>`] mints [`Alias<V>`]
//! handles, an alias mints [`Prop<T>`] accessors that are validated against
//! the schema's `PropertyDef`s (including the inheritance chain) at
//! handle-creation time, predicates compose with `&`/`|`/`!` on typed
//! comparisons, and [`TypedQuery::select`](TypedQueryBuilder::select) fixes
//! a typed row shape that results and live subscriptions decode into.
//!
//! Everything lowers onto the existing untyped machinery unchanged — a
//! [`Prop<T>`] comparison *is* a [`Pred`], a built [`TypedQuery<R>`] *is*
//! an `Arc<Query>` plus a row type — so typed and stringly queries are
//! interchangeable at every layer below the surface (the equivalence tests
//! prove byte-identical results). The stringly [`Query::builder`] remains
//! the documented escape hatch for dynamically-shaped queries.
//!
//! ```
//! use vqpy_core::frontend::library;
//! use vqpy_core::frontend::typed::TypedQuery;
//!
//! # fn main() -> Result<(), vqpy_core::VqpyError> {
//! let car = library::vehicle().alias("car");
//! let query = TypedQuery::builder("RedCarPlates")
//!     .object(&car)
//!     .filter(car.score().gt(0.6) & car.color().eq("red"))
//!     .select((car.track_id(), car.plate()))
//!     .build()?;
//! assert_eq!(query.name(), "RedCarPlates");
//! # Ok(())
//! # }
//! ```
#![warn(missing_docs)]

use crate::error::VqpyError;
use crate::extend::{BinaryFilterReg, ExtensionRegistry, SpecializedNnReg};
use crate::frontend::predicate::{CmpOp, Pred, PropRef};
use crate::frontend::query::{Aggregate, Query, QueryBuilder};
use crate::frontend::relation::RelationSchema;
use crate::frontend::vobj::VObjSchema;
use std::marker::PhantomData;
use std::sync::Arc;
use vqpy_models::{DecodeError, FromRow, FromValue, Row, Value};
use vqpy_video::geometry::{BBox, Point};

/// A typed handle on a [`VObjSchema`]. The marker type `V` ties aliases,
/// property accessors, and library extension impls to this schema at
/// compile time; it carries no data.
///
/// Mint one from any raw schema with [`Schema::new`], or use the library's
/// ready-made handles ([`library::vehicle`](crate::frontend::library::vehicle),
/// [`library::person`](crate::frontend::library::person), ...).
#[derive(Debug)]
pub struct Schema<V> {
    schema: Arc<VObjSchema>,
    _marker: PhantomData<fn() -> V>,
}

impl<V> Clone for Schema<V> {
    fn clone(&self) -> Self {
        Self {
            schema: Arc::clone(&self.schema),
            _marker: PhantomData,
        }
    }
}

impl<V> Schema<V> {
    /// Wraps a raw schema in a typed handle. The pairing of `V` with the
    /// schema is the caller's assertion; marker-specific accessors (the
    /// library's `car.color()` etc.) mint without re-checking, so a
    /// mismatched pairing surfaces as a typed `UnknownProperty` when the
    /// query is built, not as a panic.
    pub fn new(schema: Arc<VObjSchema>) -> Self {
        Self {
            schema,
            _marker: PhantomData,
        }
    }

    /// The underlying untyped schema.
    pub fn raw(&self) -> &Arc<VObjSchema> {
        &self.schema
    }

    /// The schema name.
    pub fn name(&self) -> &str {
        self.schema.name()
    }

    /// Mints an alias handle for declaring this schema in a query.
    ///
    /// # Example
    ///
    /// ```
    /// use vqpy_core::frontend::library;
    ///
    /// let car = library::vehicle().alias("car");
    /// assert_eq!(car.name(), "car");
    /// // Typed property accessors come off the alias:
    /// let pred = car.score().gt(0.6);
    /// assert!(pred.to_string().contains("car.score"));
    /// ```
    pub fn alias(&self, alias: impl Into<String>) -> Alias<V> {
        Alias {
            alias: alias.into(),
            schema: Arc::clone(&self.schema),
            _marker: PhantomData,
        }
    }
}

/// A declared occurrence of a schema in a query, e.g. `car: Vehicle`.
/// Property accessors minted here are validated against the schema (and
/// its inheritance chain) immediately — a typo'd name or wrong-typed
/// request never reaches plan time.
#[derive(Debug)]
pub struct Alias<V> {
    alias: String,
    schema: Arc<VObjSchema>,
    _marker: PhantomData<fn() -> V>,
}

impl<V> Clone for Alias<V> {
    fn clone(&self) -> Self {
        Self {
            alias: self.alias.clone(),
            schema: Arc::clone(&self.schema),
            _marker: PhantomData,
        }
    }
}

impl<V> Alias<V> {
    /// The alias name as it appears in the query.
    pub fn name(&self) -> &str {
        &self.alias
    }

    /// The underlying schema.
    pub fn schema(&self) -> &Arc<VObjSchema> {
        &self.schema
    }

    /// Mints a typed accessor for a named property.
    ///
    /// # Errors
    ///
    /// [`VqpyError::UnknownProperty`] when `name` resolves nowhere on the
    /// schema or its ancestors, and [`VqpyError::PropertyTypeMismatch`]
    /// when the property declares a value kind that `T` cannot decode —
    /// both at handle-creation time, naming the schema and property.
    pub fn prop<T: FromValue>(&self, name: &str) -> Result<Prop<T>, VqpyError> {
        let resolved =
            self.schema
                .resolve_property(name)
                .ok_or_else(|| VqpyError::UnknownProperty {
                    schema: self.schema.name().to_owned(),
                    property: name.to_owned(),
                })?;
        if let Some(kind) = resolved.declared_kind() {
            if !T::accepts(kind) {
                return Err(VqpyError::PropertyTypeMismatch {
                    schema: self.schema.name().to_owned(),
                    property: name.to_owned(),
                    requested: T::type_name(),
                    declared: kind,
                });
            }
        }
        Ok(Prop {
            target: PropRef::new(&self.alias, name),
            _marker: PhantomData,
        })
    }

    /// The built-in tracker identity (`Null` until the object is tracked,
    /// so decode as `Option<i64>` via [`Prop::optional`] when the query
    /// does not itself constrain `track_id`).
    ///
    /// The built-in accessors here mint with the built-in's well-known
    /// kind. If a schema *shadows* a built-in name with its own
    /// differently-kinded property definition, use the checked generic
    /// path (`alias.prop::<T>("score")?`) instead — the infallible
    /// accessor would surface the mismatch as a `DecodeError` at row
    /// decode, not at mint time.
    pub fn track_id(&self) -> Prop<i64> {
        self.builtin("track_id")
    }

    /// The built-in detector confidence.
    pub fn score(&self) -> Prop<f64> {
        self.builtin("score")
    }

    /// The built-in bounding box.
    pub fn bbox(&self) -> Prop<BBox> {
        self.builtin("bbox")
    }

    /// The built-in box center.
    pub fn center(&self) -> Prop<Point> {
        self.builtin("center")
    }

    /// The built-in detector class label.
    pub fn class_label(&self) -> Prop<String> {
        self.builtin("class_label")
    }

    fn builtin<T: FromValue>(&self, name: &str) -> Prop<T> {
        Prop {
            target: PropRef::new(&self.alias, name),
            _marker: PhantomData,
        }
    }

    /// Mints a handle without the mint-time schema check. The library's
    /// marker-specific accessors use this: their names are correct by
    /// construction for the blessed schema, and if a caller pairs a
    /// marker with an unrelated raw schema via [`Schema::new`], the bad
    /// reference still surfaces as a typed `UnknownProperty` at
    /// `Query::build()` — never a panic.
    pub(crate) fn unchecked<T: FromValue>(&self, name: &str) -> Prop<T> {
        self.builtin(name)
    }
}

/// A typed accessor for `alias.prop`. Comparisons produce ordinary
/// [`Pred`]s, so typed and stringly predicates mix freely; the payoff is
/// that the literal's Rust type must match the property's (`car.speed()
/// .gt("fast")` does not compile) and that the handle itself was validated
/// against the schema when it was minted.
#[derive(Debug)]
pub struct Prop<T> {
    target: PropRef,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Clone for Prop<T> {
    fn clone(&self) -> Self {
        Self {
            target: self.target.clone(),
            _marker: PhantomData,
        }
    }
}

impl<T> Prop<T> {
    /// The underlying untyped property reference.
    pub fn prop_ref(&self) -> &PropRef {
        &self.target
    }

    /// Re-types the accessor to decode `Null` as `None` instead of
    /// failing. Useful for built-ins like `track_id` that are `Null` until
    /// the tracker confirms the object.
    pub fn optional(self) -> Prop<Option<T>> {
        Prop {
            target: self.target,
            _marker: PhantomData,
        }
    }
}

impl<T: FromValue + Into<Value>> Prop<T> {
    fn cmp(&self, op: CmpOp, value: impl Into<T>) -> Pred {
        Pred::Cmp {
            target: self.target.clone(),
            op,
            value: value.into().into(),
        }
    }

    /// `alias.prop == value`.
    pub fn eq(&self, value: impl Into<T>) -> Pred {
        self.cmp(CmpOp::Eq, value)
    }

    /// `alias.prop != value`.
    pub fn ne(&self, value: impl Into<T>) -> Pred {
        self.cmp(CmpOp::Ne, value)
    }

    /// `alias.prop > value`.
    ///
    /// # Example
    ///
    /// ```
    /// use vqpy_core::frontend::library;
    ///
    /// let car = library::vehicle().alias("car");
    /// let fast = car.prop::<f64>("speed")?.gt(60.0);
    /// let red = car.color().eq("red");
    /// // Typed comparisons are ordinary `Pred`s and compose with &, |, !:
    /// assert_eq!((fast & red).conjuncts().len(), 2);
    /// # Ok::<(), vqpy_core::VqpyError>(())
    /// ```
    pub fn gt(&self, value: impl Into<T>) -> Pred {
        self.cmp(CmpOp::Gt, value)
    }

    /// `alias.prop >= value`.
    pub fn ge(&self, value: impl Into<T>) -> Pred {
        self.cmp(CmpOp::Ge, value)
    }

    /// `alias.prop < value`.
    pub fn lt(&self, value: impl Into<T>) -> Pred {
        self.cmp(CmpOp::Lt, value)
    }

    /// `alias.prop <= value`.
    pub fn le(&self, value: impl Into<T>) -> Pred {
        self.cmp(CmpOp::Le, value)
    }
}

/// A projection list whose item types fix the decoded row type.
///
/// Implemented for tuples of [`Prop<T>`]s up to arity 8; the row decodes
/// positionally in selection order.
pub trait Select {
    /// The Rust type one output row decodes into.
    type Row: FromRow;

    /// The projected property references, in row order.
    fn columns(&self) -> Vec<PropRef>;
}

macro_rules! impl_select_tuple {
    ($( $t:ident : $idx:tt ),+) => {
        impl<$( $t: FromValue ),+> Select for ($( Prop<$t>, )+) {
            type Row = ($( $t, )+);

            fn columns(&self) -> Vec<PropRef> {
                vec![$( self.$idx.target.clone(), )+]
            }
        }
    };
}

impl_select_tuple!(A: 0);
impl_select_tuple!(A: 0, B: 1);
impl_select_tuple!(A: 0, B: 1, C: 2);
impl_select_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_select_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_select_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_select_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_select_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

/// Builder for a [`TypedQuery`]. Starts untyped-row (`R = ()`); calling
/// [`select`](TypedQueryBuilder::select) fixes the row type. Lowers every
/// call onto the stringly [`QueryBuilder`], so validation and planning are
/// shared with the untyped path.
#[derive(Debug)]
pub struct TypedQueryBuilder<R> {
    inner: QueryBuilder,
    _row: PhantomData<fn() -> R>,
}

impl<R: FromRow> TypedQueryBuilder<R> {
    /// Declares a typed alias in the query.
    pub fn object<V>(self, alias: &Alias<V>) -> Self {
        Self {
            inner: self.inner.vobj(alias.name(), Arc::clone(alias.schema())),
            _row: PhantomData,
        }
    }

    /// ANDs a predicate into the frame constraint.
    pub fn filter(self, pred: Pred) -> Self {
        Self {
            inner: self.inner.frame_constraint(pred),
            _row: PhantomData,
        }
    }

    /// Declares a relation between two typed aliases.
    pub fn relation<L, Rt>(
        self,
        schema: Arc<RelationSchema>,
        left: &Alias<L>,
        right: &Alias<Rt>,
    ) -> Self {
        Self {
            inner: self.inner.relation(schema, left.name(), right.name()),
            _row: PhantomData,
        }
    }

    /// Video output: count of distinct tracked objects of `alias` that
    /// ever matched.
    pub fn count_distinct_tracks<V>(self, alias: &Alias<V>) -> Self {
        self.video_output(Aggregate::CountDistinctTracks {
            alias: alias.name().to_owned(),
        })
    }

    /// Video output: average matched objects of `alias` per frame.
    pub fn avg_per_frame<V>(self, alias: &Alias<V>) -> Self {
        self.video_output(Aggregate::AvgPerFrame {
            alias: alias.name().to_owned(),
        })
    }

    /// Video output: maximum matched objects of `alias` on any frame.
    pub fn max_per_frame<V>(self, alias: &Alias<V>) -> Self {
        self.video_output(Aggregate::MaxPerFrame {
            alias: alias.name().to_owned(),
        })
    }

    /// Video output: number of matching frames.
    pub fn count_frames(self) -> Self {
        self.video_output(Aggregate::CountFrames)
    }

    /// Sets a raw video aggregation (escape hatch).
    pub fn video_output(self, agg: Aggregate) -> Self {
        Self {
            inner: self.inner.video_output(agg),
            _row: PhantomData,
        }
    }

    /// Sets the planner accuracy target in `[0, 1]`.
    pub fn accuracy_target(self, f1: f32) -> Self {
        Self {
            inner: self.inner.accuracy_target(f1),
            _row: PhantomData,
        }
    }

    /// Validates and finalizes the query.
    ///
    /// # Errors
    ///
    /// Exactly the stringly builder's errors ([`VqpyError::UnknownAlias`],
    /// [`VqpyError::UnknownProperty`], [`VqpyError::UnknownRelation`],
    /// [`VqpyError::UnknownRelationProperty`], duplicate aliases, missing
    /// detectors) — typed handles make most of them unreachable, but
    /// stringly predicates may have been mixed in via
    /// [`filter`](TypedQueryBuilder::filter).
    pub fn build(self) -> Result<TypedQuery<R>, VqpyError> {
        Ok(TypedQuery {
            query: self.inner.build()?,
            _row: PhantomData,
        })
    }
}

impl TypedQueryBuilder<()> {
    /// Fixes the frame-output projection *and* the typed row shape in one
    /// step: each selected [`Prop<T>`] contributes a column, and rows
    /// decode into the tuple of the props' Rust types.
    pub fn select<S: Select>(self, selection: S) -> TypedQueryBuilder<S::Row> {
        let mut inner = self.inner;
        for c in selection.columns() {
            let refs = [(c.alias.as_str(), c.prop.as_str())];
            inner = inner.frame_output(&refs);
        }
        TypedQueryBuilder {
            inner,
            _row: PhantomData,
        }
    }
}

/// A validated query with a typed row shape `R`. Wraps the same
/// `Arc<Query>` the stringly builder produces — hand
/// [`query()`](TypedQuery::query) to any existing API (sessions, serving,
/// composition) — plus decoding of result rows into `R`.
#[derive(Debug)]
pub struct TypedQuery<R> {
    query: Arc<Query>,
    _row: PhantomData<fn() -> R>,
}

impl<R> Clone for TypedQuery<R> {
    fn clone(&self) -> Self {
        Self {
            query: Arc::clone(&self.query),
            _row: PhantomData,
        }
    }
}

/// One decoded hit frame: the typed counterpart of
/// [`FrameHit`](crate::backend::exec::FrameHit).
#[derive(Debug, Clone, PartialEq)]
pub struct TypedHit<R> {
    /// Frame index.
    pub frame: u64,
    /// Frame timestamp in seconds.
    pub time_s: f64,
    /// One decoded row per matching object combination.
    pub rows: Vec<R>,
}

/// A fully-decoded offline result: the typed counterpart of
/// [`QueryResult`](crate::backend::exec::QueryResult), which remains
/// available as [`TypedResult::raw`].
#[derive(Debug, Clone)]
pub struct TypedResult<R> {
    /// Decoded hit frames, in frame order.
    pub hits: Vec<TypedHit<R>>,
    /// The video-level aggregate, if the query declared one.
    pub video_value: Option<Value>,
    /// The untyped result (metrics, virtual time, raw rows).
    pub raw: Arc<crate::backend::exec::QueryResult>,
}

impl TypedQuery<()> {
    /// Starts building a typed query.
    pub fn builder(name: impl Into<String>) -> TypedQueryBuilder<()> {
        TypedQueryBuilder {
            inner: Query::builder(name),
            _row: PhantomData,
        }
    }
}

/// Decodes one untyped hit frame into typed rows — the single decode path
/// shared by offline results ([`TypedQuery::decode_hit`]) and live typed
/// subscriptions (`vqpy-serve`).
///
/// # Errors
///
/// [`DecodeError`] naming the first column whose value did not match `R`.
pub fn decode_frame_hit<R: FromRow>(
    hit: &crate::backend::exec::FrameHit,
) -> Result<TypedHit<R>, DecodeError> {
    let rows = hit
        .outputs
        .iter()
        .map(|combo| R::from_row(Row::new(combo)))
        .collect::<Result<Vec<R>, DecodeError>>()?;
    Ok(TypedHit {
        frame: hit.frame,
        time_s: hit.time_s,
        rows,
    })
}

impl<R: FromRow> TypedQuery<R> {
    /// Re-types an already-built query. The caller asserts that the
    /// query's frame output decodes as `R`; a wrong assertion surfaces as
    /// a [`DecodeError`] on the first decoded hit, never a panic.
    pub fn wrap(query: Arc<Query>) -> Self {
        Self {
            query,
            _row: PhantomData,
        }
    }

    /// The underlying untyped query, accepted by every existing API.
    pub fn query(&self) -> &Arc<Query> {
        &self.query
    }

    /// The query name.
    pub fn name(&self) -> &str {
        self.query.name()
    }

    /// Decodes one untyped hit frame.
    ///
    /// # Errors
    ///
    /// [`DecodeError`] naming the first column whose value did not match
    /// the selected type.
    pub fn decode_hit(
        &self,
        hit: &crate::backend::exec::FrameHit,
    ) -> Result<TypedHit<R>, DecodeError> {
        decode_frame_hit(hit)
    }

    /// Decodes a whole offline result.
    pub fn decode_result(
        &self,
        result: Arc<crate::backend::exec::QueryResult>,
    ) -> Result<TypedResult<R>, DecodeError> {
        let hits = result
            .frame_hits
            .iter()
            .map(|h| self.decode_hit(h))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(TypedResult {
            hits,
            video_value: result.video_value.clone(),
            raw: result,
        })
    }

    /// Executes offline on a session and decodes the result.
    ///
    /// # Errors
    ///
    /// Any execution error, plus [`VqpyError::Decode`] if a row did not
    /// match the selected types.
    pub fn run(
        &self,
        session: &crate::session::VqpySession,
        video: &dyn vqpy_video::source::VideoSource,
    ) -> Result<TypedResult<R>, VqpyError> {
        let raw = session.execute(&self.query, video)?;
        Ok(self.decode_result(raw)?)
    }
}

impl ExtensionRegistry {
    /// Registers a specialized NN against a typed schema handle: the
    /// property is validated on the schema (inheritance included) and the
    /// literal's kind is checked against the property's declared kind —
    /// the typed counterpart of
    /// [`register_specialized_nn`](ExtensionRegistry::register_specialized_nn).
    ///
    /// # Errors
    ///
    /// [`VqpyError::UnknownProperty`] for a typo'd property name,
    /// [`VqpyError::ExtensionKindMismatch`] when the literal's kind
    /// contradicts the declared one.
    pub fn register_specialized_nn_on<V>(
        &self,
        schema: &Schema<V>,
        detector: impl Into<String>,
        prop: &str,
        value: impl Into<Value>,
    ) -> Result<(), VqpyError> {
        let value = value.into();
        let resolved =
            schema
                .raw()
                .resolve_property(prop)
                .ok_or_else(|| VqpyError::UnknownProperty {
                    schema: schema.name().to_owned(),
                    property: prop.to_owned(),
                })?;
        if let (Some(declared), Some(actual)) = (resolved.declared_kind(), value.kind()) {
            if declared != actual {
                return Err(VqpyError::ExtensionKindMismatch {
                    schema: schema.name().to_owned(),
                    property: prop.to_owned(),
                    declared,
                    literal: actual,
                });
            }
        }
        self.register_specialized_nn(SpecializedNnReg {
            schema: schema.name().to_owned(),
            detector: detector.into(),
            prop: prop.to_owned(),
            value,
        });
        Ok(())
    }

    /// Registers a binary frame-classifier filter against a typed schema
    /// handle (the typed counterpart of
    /// [`register_binary_filter`](ExtensionRegistry::register_binary_filter)).
    pub fn register_binary_filter_on<V>(&self, schema: &Schema<V>, model: impl Into<String>) {
        self.register_binary_filter(BinaryFilterReg {
            schema: schema.name().to_owned(),
            model: model.into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::property::PropertyDef;
    use vqpy_models::ValueKind;

    struct Car;

    fn vehicle() -> Schema<Car> {
        Schema::new(
            VObjSchema::builder("Vehicle")
                .class_labels(&["car"])
                .detector("yolox")
                .property(
                    PropertyDef::stateless_model("color", "color_detect", true)
                        .with_kind(ValueKind::Str),
                )
                .property(
                    PropertyDef::stateless_model("plate", "plate_recognize", true)
                        .with_kind(ValueKind::Str),
                )
                .build(),
        )
    }

    #[test]
    fn typo_is_rejected_at_handle_creation_naming_schema_and_property() {
        let car = vehicle().alias("car");
        let err = car.prop::<String>("colour").unwrap_err();
        match err {
            VqpyError::UnknownProperty { schema, property } => {
                assert_eq!(schema, "Vehicle");
                assert_eq!(property, "colour");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn wrong_typed_handle_is_rejected_at_creation() {
        let car = vehicle().alias("car");
        let err = car.prop::<f32>("plate").unwrap_err();
        match err {
            VqpyError::PropertyTypeMismatch {
                schema,
                property,
                requested,
                declared,
            } => {
                assert_eq!(schema, "Vehicle");
                assert_eq!(property, "plate");
                assert_eq!(requested, "f32");
                assert_eq!(declared, ValueKind::Str);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn builtin_handles_check_kinds_too() {
        let car = vehicle().alias("car");
        // Requesting score as a String through the generic path fails...
        assert!(matches!(
            car.prop::<String>("score"),
            Err(VqpyError::PropertyTypeMismatch { .. })
        ));
        // ...while numeric views (f32 over a Float) are accepted.
        assert!(car.prop::<f32>("score").is_ok());
        assert!(car.prop::<i64>("track_id").is_ok());
    }

    #[test]
    fn typed_builder_lowers_onto_the_same_query() {
        let schema = vehicle();
        let car = schema.alias("car");
        let typed = TypedQuery::builder("RedCar")
            .object(&car)
            .filter(car.score().gt(0.6) & car.prop::<String>("color").unwrap().eq("red"))
            .select((car.track_id(), car.prop::<String>("plate").unwrap()))
            .build()
            .unwrap();

        let stringly = Query::builder("RedCar")
            .vobj("car", Arc::clone(schema.raw()))
            .frame_constraint(Pred::gt("car", "score", 0.6) & Pred::eq("car", "color", "red"))
            .frame_output(&[("car", "track_id"), ("car", "plate")])
            .build()
            .unwrap();

        assert_eq!(
            typed.query().frame_constraint().to_string(),
            stringly.frame_constraint().to_string()
        );
        assert_eq!(typed.query().frame_output(), stringly.frame_output());
        assert_eq!(typed.query().vobjs().len(), 1);
    }

    #[test]
    fn decode_hit_produces_typed_rows_and_typed_errors() {
        let schema = vehicle();
        let car = schema.alias("car");
        let typed = TypedQuery::builder("Plates")
            .object(&car)
            .select((car.track_id(), car.prop::<String>("plate").unwrap()))
            .build()
            .unwrap();
        let hit = crate::backend::exec::FrameHit {
            frame: 7,
            time_s: 0.5,
            outputs: vec![vec![
                ("car.track_id".into(), Value::Int(3)),
                ("car.plate".into(), Value::from("AB-1234")),
            ]],
        };
        let decoded = typed.decode_hit(&hit).unwrap();
        assert_eq!(decoded.rows, vec![(3i64, "AB-1234".to_owned())]);

        // A null plate is a decode error for String...
        let bad = crate::backend::exec::FrameHit {
            frame: 8,
            time_s: 0.6,
            outputs: vec![vec![
                ("car.track_id".into(), Value::Int(3)),
                ("car.plate".into(), Value::Null),
            ]],
        };
        assert!(typed.decode_hit(&bad).is_err());
        // ...unless the selection asked for Option<String>.
        let lenient = TypedQuery::builder("Plates")
            .object(&car)
            .select((
                car.track_id(),
                car.prop::<String>("plate").unwrap().optional(),
            ))
            .build()
            .unwrap();
        let decoded = lenient.decode_hit(&bad).unwrap();
        assert_eq!(decoded.rows, vec![(3i64, None)]);
    }

    #[test]
    fn video_only_queries_build_without_select() {
        let schema = vehicle();
        let car = schema.alias("car");
        let q = TypedQuery::builder("Count")
            .object(&car)
            .filter(car.score().gt(0.5))
            .count_distinct_tracks(&car)
            .build()
            .unwrap();
        assert!(q.query().video_output().is_some());
        assert!(q.query().frame_output().is_empty());
    }

    #[test]
    fn mismatched_marker_schema_fails_at_build_not_panic() {
        // Pairing the Vehicle marker with an unrelated raw schema is a
        // caller error, but it must surface as a typed build-time error.
        let bogus: Schema<crate::frontend::library::Vehicle> = Schema::new(
            VObjSchema::builder("Ball")
                .class_labels(&["ball"])
                .detector("yolox")
                .build(),
        );
        let ball = bogus.alias("b");
        let err = TypedQuery::builder("Bad")
            .object(&ball)
            .filter(ball.color().eq("red"))
            .build()
            .unwrap_err();
        match err {
            VqpyError::UnknownProperty { schema, property } => {
                assert_eq!(schema, "Ball");
                assert_eq!(property, "color");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn typed_extension_registration_validates() {
        let reg = ExtensionRegistry::new();
        let schema = vehicle();
        reg.register_specialized_nn_on(&schema, "red_car_detector", "color", "red")
            .unwrap();
        assert_eq!(reg.specialized_for(|n| n == "Vehicle").len(), 1);

        // Typo'd property: typed error, nothing registered.
        assert!(matches!(
            reg.register_specialized_nn_on(&schema, "d", "colour", "red"),
            Err(VqpyError::UnknownProperty { .. })
        ));
        // Wrong-kinded literal against a declared Str property; the error
        // names both kinds.
        match reg
            .register_specialized_nn_on(&schema, "d", "color", 3.0f64)
            .unwrap_err()
        {
            VqpyError::ExtensionKindMismatch {
                declared, literal, ..
            } => {
                assert_eq!(declared, ValueKind::Str);
                assert_eq!(literal, ValueKind::Float);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(reg.specialized_for(|n| n == "Vehicle").len(), 1);

        reg.register_binary_filter_on(&schema, "no_red_on_road");
        assert_eq!(reg.binary_for(|n| n == "Vehicle").len(), 1);
    }
}
