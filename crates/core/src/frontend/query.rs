//! The `Query` construct (Figures 5-7): frame constraints/outputs, video
//! constraints/outputs, and query inheritance.

use crate::error::VqpyError;
use crate::frontend::predicate::{Pred, PropRef};
use crate::frontend::relation::RelationSchema;
use crate::frontend::vobj::VObjSchema;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A VObj declared in a query under an alias.
#[derive(Debug, Clone)]
pub struct VObjDecl {
    pub alias: String,
    pub schema: Arc<VObjSchema>,
}

/// A relation declared in a query, binding two aliases.
#[derive(Debug, Clone)]
pub struct RelationDecl {
    pub name: String,
    pub schema: Arc<RelationSchema>,
    pub left_alias: String,
    pub right_alias: String,
}

/// Video-level aggregation (`video_output`, Figure 7). The "same object in
/// different frames is one entity" semantics come from tracker identity.
#[derive(Debug, Clone, PartialEq)]
pub enum Aggregate {
    /// Number of distinct tracked objects of an alias that ever satisfied
    /// the frame constraint (Figure 7's right-turn counting).
    CountDistinctTracks { alias: String },
    /// Average number of matched objects of an alias per *processed* frame
    /// (§5.3 Q4/Q5: "average number of cars on the crossing").
    AvgPerFrame { alias: String },
    /// Maximum number of matched objects of an alias on any frame.
    MaxPerFrame { alias: String },
    /// Number of frames satisfying the frame constraint.
    CountFrames,
}

/// A complete basic video query.
#[derive(Debug, Clone)]
pub struct Query {
    name: String,
    vobjs: Vec<VObjDecl>,
    relations: Vec<RelationDecl>,
    frame_constraint: Pred,
    frame_output: Vec<PropRef>,
    video_output: Option<Aggregate>,
    accuracy_target: Option<f32>,
}

impl Query {
    /// Starts building a query.
    pub fn builder(name: impl Into<String>) -> QueryBuilder {
        QueryBuilder {
            query: Query {
                name: name.into(),
                vobjs: Vec::new(),
                relations: Vec::new(),
                frame_constraint: Pred::True,
                frame_output: Vec::new(),
                video_output: None,
                accuracy_target: None,
            },
        }
    }

    /// Builds a sub-query that inherits everything from `base`; added
    /// constraints are ANDed with the base constraint (query inheritance,
    /// §3: "a sub-Query can reuse the constraints of all its super-Query to
    /// construct a stricter constraint").
    pub fn extend(name: impl Into<String>, base: &Query) -> QueryBuilder {
        let mut q = base.clone();
        q.name = name.into();
        QueryBuilder { query: q }
    }

    /// Query name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared VObjs.
    pub fn vobjs(&self) -> &[VObjDecl] {
        &self.vobjs
    }

    /// Declared relations.
    pub fn relations(&self) -> &[RelationDecl] {
        &self.relations
    }

    /// The frame constraint.
    pub fn frame_constraint(&self) -> &Pred {
        &self.frame_constraint
    }

    /// The frame output projection.
    pub fn frame_output(&self) -> &[PropRef] {
        &self.frame_output
    }

    /// The video aggregation, if any.
    pub fn video_output(&self) -> Option<&Aggregate> {
        self.video_output.as_ref()
    }

    /// Planner accuracy target (F1 against the reference plan), if set.
    pub fn accuracy_target(&self) -> Option<f32> {
        self.accuracy_target
    }

    /// Looks up a declared alias.
    pub fn vobj(&self, alias: &str) -> Option<&VObjDecl> {
        self.vobjs.iter().find(|v| v.alias == alias)
    }

    /// Looks up a declared relation.
    pub fn relation(&self, name: &str) -> Option<&RelationDecl> {
        self.relations.iter().find(|r| r.name == name)
    }

    /// Validates alias/relation/property references.
    fn validate(&self) -> Result<(), VqpyError> {
        let aliases: BTreeSet<&str> = self.vobjs.iter().map(|v| v.alias.as_str()).collect();
        if aliases.len() != self.vobjs.len() {
            return Err(VqpyError::InvalidQuery("duplicate alias".into()));
        }
        for r in &self.relations {
            for a in [&r.left_alias, &r.right_alias] {
                if !aliases.contains(a.as_str()) {
                    return Err(VqpyError::UnknownAlias(a.clone()));
                }
            }
        }
        let mut refs: Vec<PropRef> = self
            .frame_constraint
            .referenced_props()
            .into_iter()
            .collect();
        refs.extend(self.frame_output.iter().cloned());
        for p in refs {
            let decl = self
                .vobj(&p.alias)
                .ok_or_else(|| VqpyError::UnknownAlias(p.alias.clone()))?;
            if decl.schema.resolve_property(&p.prop).is_none() {
                return Err(VqpyError::UnknownProperty {
                    schema: decl.schema.name().to_owned(),
                    property: p.prop.clone(),
                });
            }
        }
        for (rel, prop) in self.frame_constraint.referenced_relation_props() {
            let decl = self
                .relation(&rel)
                .ok_or_else(|| VqpyError::UnknownRelation(rel.clone()))?;
            // A typo'd relation property used to slip through to execution,
            // where the missing value made the predicate silently false on
            // every frame; reject it here with a typed error instead.
            if decl.schema.resolve_property(&prop).is_none() {
                return Err(VqpyError::UnknownRelationProperty {
                    relation: rel,
                    property: prop,
                });
            }
        }
        if let Some(agg) = &self.video_output {
            let alias = match agg {
                Aggregate::CountDistinctTracks { alias }
                | Aggregate::AvgPerFrame { alias }
                | Aggregate::MaxPerFrame { alias } => Some(alias),
                Aggregate::CountFrames => None,
            };
            if let Some(a) = alias {
                if !aliases.contains(a.as_str()) {
                    return Err(VqpyError::UnknownAlias(a.clone()));
                }
            }
        }
        for v in &self.vobjs {
            v.schema.require_detector()?;
        }
        Ok(())
    }
}

/// Builder for [`Query`].
#[derive(Debug)]
pub struct QueryBuilder {
    query: Query,
}

impl QueryBuilder {
    /// Declares a VObj under `alias`.
    pub fn vobj(mut self, alias: impl Into<String>, schema: Arc<VObjSchema>) -> Self {
        self.query.vobjs.push(VObjDecl {
            alias: alias.into(),
            schema,
        });
        self
    }

    /// Declares a relation named by its schema between two aliases.
    pub fn relation(
        mut self,
        schema: Arc<RelationSchema>,
        left_alias: impl Into<String>,
        right_alias: impl Into<String>,
    ) -> Self {
        self.query.relations.push(RelationDecl {
            name: schema.name().to_owned(),
            schema,
            left_alias: left_alias.into(),
            right_alias: right_alias.into(),
        });
        self
    }

    /// ANDs `pred` into the frame constraint.
    pub fn frame_constraint(mut self, pred: Pred) -> Self {
        self.query.frame_constraint =
            match std::mem::replace(&mut self.query.frame_constraint, Pred::True) {
                Pred::True => pred,
                existing => existing & pred,
            };
        self
    }

    /// Adds properties to the frame output.
    pub fn frame_output(mut self, refs: &[(&str, &str)]) -> Self {
        self.query
            .frame_output
            .extend(refs.iter().map(|(a, p)| PropRef::new(*a, *p)));
        self
    }

    /// Sets the video aggregation.
    pub fn video_output(mut self, agg: Aggregate) -> Self {
        self.query.video_output = Some(agg);
        self
    }

    /// Sets the planner accuracy target in `[0, 1]`.
    pub fn accuracy_target(mut self, f1: f32) -> Self {
        self.query.accuracy_target = Some(f1);
        self
    }

    /// Validates and finalizes the query.
    ///
    /// # Errors
    ///
    /// Returns [`VqpyError`] for duplicate aliases, references to
    /// undeclared aliases/relations, unresolvable properties, or VObjs
    /// without detectors.
    pub fn build(self) -> Result<Arc<Query>, VqpyError> {
        self.query.validate()?;
        Ok(Arc::new(self.query))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::predicate::CmpOp;
    use crate::frontend::property::PropertyDef;
    use crate::frontend::relation::distance_relation;

    fn vehicle() -> Arc<VObjSchema> {
        VObjSchema::builder("Vehicle")
            .class_labels(&["car", "bus", "truck"])
            .detector("yolox")
            .property(PropertyDef::stateless_model("color", "color_detect", true))
            .build()
    }

    fn person() -> Arc<VObjSchema> {
        VObjSchema::builder("Person")
            .class_labels(&["person"])
            .detector("yolox")
            .build()
    }

    #[test]
    fn red_car_query_builds() {
        let q = Query::builder("RedCar")
            .vobj("car", vehicle())
            .frame_constraint(Pred::gt("car", "score", 0.6) & Pred::eq("car", "color", "red"))
            .frame_output(&[("car", "track_id"), ("car", "bbox")])
            .build()
            .unwrap();
        assert_eq!(q.name(), "RedCar");
        assert_eq!(q.vobjs().len(), 1);
        assert_eq!(q.frame_output().len(), 2);
    }

    #[test]
    fn unknown_property_is_rejected() {
        let err = Query::builder("Bad")
            .vobj("car", vehicle())
            .frame_constraint(Pred::eq("car", "altitude", 3.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, VqpyError::UnknownProperty { .. }));
    }

    #[test]
    fn unknown_alias_is_rejected() {
        let err = Query::builder("Bad")
            .vobj("car", vehicle())
            .frame_constraint(Pred::eq("truck", "color", "red"))
            .build()
            .unwrap_err();
        assert!(matches!(err, VqpyError::UnknownAlias(_)));
    }

    #[test]
    fn duplicate_alias_is_rejected() {
        let err = Query::builder("Bad")
            .vobj("car", vehicle())
            .vobj("car", vehicle())
            .build()
            .unwrap_err();
        assert!(matches!(err, VqpyError::InvalidQuery(_)));
    }

    #[test]
    fn relation_query_builds() {
        let rel = distance_relation("near", vehicle(), person());
        let q = Query::builder("CarNearPerson")
            .vobj("car", vehicle())
            .vobj("person", person())
            .relation(rel, "car", "person")
            .frame_constraint(Pred::relation("near", "distance", CmpOp::Lt, 100.0))
            .build()
            .unwrap();
        assert_eq!(q.relations().len(), 1);
    }

    #[test]
    fn typoed_relation_property_is_rejected_at_build_time() {
        // Before build-time validation, `distnace` survived to execution
        // where the predicate silently matched nothing.
        let rel = distance_relation("near", vehicle(), person());
        let err = Query::builder("Bad")
            .vobj("car", vehicle())
            .vobj("person", person())
            .relation(rel, "car", "person")
            .frame_constraint(Pred::relation("near", "distnace", CmpOp::Lt, 100.0))
            .build()
            .unwrap_err();
        match err {
            VqpyError::UnknownRelationProperty { relation, property } => {
                assert_eq!(relation, "near");
                assert_eq!(property, "distnace");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn undeclared_relation_is_rejected() {
        let err = Query::builder("Bad")
            .vobj("car", vehicle())
            .frame_constraint(Pred::relation("ghost", "distance", CmpOp::Lt, 1.0))
            .build()
            .unwrap_err();
        assert!(matches!(err, VqpyError::UnknownRelation(_)));
    }

    #[test]
    fn query_inheritance_strengthens_constraints() {
        let base = Query::builder("Car")
            .vobj("car", vehicle())
            .frame_constraint(Pred::gt("car", "score", 0.6))
            .build()
            .unwrap();
        let red = Query::extend("RedCar", &base)
            .frame_constraint(Pred::eq("car", "color", "red"))
            .build()
            .unwrap();
        assert_eq!(red.name(), "RedCar");
        // Both conjuncts present.
        assert_eq!(red.frame_constraint().conjuncts().len(), 2);
        // Base unchanged.
        assert_eq!(base.frame_constraint().conjuncts().len(), 1);
    }

    #[test]
    fn video_output_alias_is_validated() {
        let err = Query::builder("Count")
            .vobj("car", vehicle())
            .video_output(Aggregate::CountDistinctTracks {
                alias: "bike".into(),
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, VqpyError::UnknownAlias(_)));
    }
}
