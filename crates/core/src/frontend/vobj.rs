//! VObj schemas: the central abstraction of VQPy (Figure 2), with
//! inheritance.
//!
//! A `VObjSchema` names a category of video object ("Vehicle", "RedCar"),
//! optionally inherits a parent schema, binds a detector model, and carries
//! property definitions. Property/detector/class-label lookups walk the
//! inheritance chain, so a sub-VObj sees everything its ancestors define —
//! the code-reuse story of §3's Inheritance paragraph.

use crate::error::VqpyError;
use crate::frontend::property::{BuiltinProp, PropertyDef};
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// An immutable, shareable VObj schema.
#[derive(Debug, Clone)]
pub struct VObjSchema {
    name: String,
    parent: Option<Arc<VObjSchema>>,
    class_labels: Vec<String>,
    detector: Option<String>,
    properties: BTreeMap<String, PropertyDef>,
}

impl VObjSchema {
    /// Starts building a schema named `name`.
    pub fn builder(name: impl Into<String>) -> VObjSchemaBuilder {
        VObjSchemaBuilder {
            schema: VObjSchema {
                name: name.into(),
                parent: None,
                class_labels: Vec::new(),
                detector: None,
                properties: BTreeMap::new(),
            },
        }
    }

    /// The schema's own name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The parent schema, if any.
    pub fn parent(&self) -> Option<&Arc<VObjSchema>> {
        self.parent.as_ref()
    }

    /// Detector class labels, resolved through the inheritance chain.
    pub fn class_labels(&self) -> &[String] {
        if !self.class_labels.is_empty() {
            return &self.class_labels;
        }
        match &self.parent {
            Some(p) => p.class_labels(),
            None => &[],
        }
    }

    /// Detector model name, resolved through the inheritance chain.
    pub fn detector(&self) -> Option<&str> {
        if let Some(d) = &self.detector {
            return Some(d);
        }
        self.parent.as_ref().and_then(|p| p.detector())
    }

    /// Detector model name, or an error naming the schema.
    pub fn require_detector(&self) -> Result<&str, VqpyError> {
        self.detector()
            .ok_or_else(|| VqpyError::MissingDetector(self.name.clone()))
    }

    /// Resolves a property by name: own properties shadow inherited ones;
    /// built-ins resolve last (they cannot be shadowed meaningfully).
    pub fn resolve_property(&self, name: &str) -> Option<ResolvedProperty<'_>> {
        if let Some(p) = self.properties.get(name) {
            return Some(ResolvedProperty::Defined(p));
        }
        if let Some(parent) = &self.parent {
            // Recurse, but rebind lifetimes by walking explicitly.
            let mut cur: &VObjSchema = parent;
            loop {
                if let Some(p) = cur.properties.get(name) {
                    return Some(ResolvedProperty::Defined(p));
                }
                match &cur.parent {
                    Some(next) => cur = next,
                    None => break,
                }
            }
        }
        BuiltinProp::from_name(name).map(ResolvedProperty::Builtin)
    }

    /// All defined (non-builtin) properties visible on this schema, with
    /// sub-schema definitions shadowing inherited ones. Sorted by name.
    pub fn all_properties(&self) -> Vec<&PropertyDef> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let mut cur = Some(self);
        while let Some(s) = cur {
            for (name, def) in &s.properties {
                if seen.insert(name.clone()) {
                    out.push(def);
                }
            }
            cur = s.parent.as_deref();
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }

    /// Whether `ancestor` appears in this schema's inheritance chain
    /// (a schema is its own ancestor).
    pub fn inherits_from(&self, ancestor: &str) -> bool {
        let mut cur = Some(self);
        while let Some(s) = cur {
            if s.name == ancestor {
                return true;
            }
            cur = s.parent.as_deref();
        }
        false
    }

    /// Transitive dependency closure of a property set, in computation
    /// order (dependencies before dependents). Built-ins are excluded.
    ///
    /// # Errors
    ///
    /// [`VqpyError::UnknownProperty`] for unresolvable names and
    /// [`VqpyError::CyclicDependency`] for dependency cycles.
    pub fn dependency_order(&self, wanted: &[String]) -> Result<Vec<PropertyDef>, VqpyError> {
        let mut order: Vec<PropertyDef> = Vec::new();
        let mut visiting: HashSet<String> = HashSet::new();
        let mut done: HashSet<String> = HashSet::new();

        fn visit(
            schema: &VObjSchema,
            name: &str,
            order: &mut Vec<PropertyDef>,
            visiting: &mut HashSet<String>,
            done: &mut HashSet<String>,
        ) -> Result<(), VqpyError> {
            if done.contains(name) {
                return Ok(());
            }
            match schema.resolve_property(name) {
                None => Err(VqpyError::UnknownProperty {
                    schema: schema.name.clone(),
                    property: name.to_owned(),
                }),
                Some(ResolvedProperty::Builtin(_)) => {
                    done.insert(name.to_owned());
                    Ok(())
                }
                Some(ResolvedProperty::Defined(def)) => {
                    if !visiting.insert(name.to_owned()) {
                        return Err(VqpyError::CyclicDependency {
                            schema: schema.name.clone(),
                            property: name.to_owned(),
                        });
                    }
                    let def = def.clone();
                    for dep in &def.deps {
                        visit(schema, dep, order, visiting, done)?;
                    }
                    visiting.remove(name);
                    done.insert(name.to_owned());
                    order.push(def);
                    Ok(())
                }
            }
        }

        for w in wanted {
            visit(self, w, &mut order, &mut visiting, &mut done)?;
        }
        Ok(order)
    }
}

/// Result of property resolution.
#[derive(Debug)]
pub enum ResolvedProperty<'a> {
    /// A property defined on the schema or an ancestor.
    Defined(&'a PropertyDef),
    /// A built-in carried by every detection.
    Builtin(BuiltinProp),
}

impl ResolvedProperty<'_> {
    /// The declared value kind, if known: built-ins always know theirs;
    /// defined properties know it when the schema author stated one via
    /// [`PropertyDef::with_kind`](crate::frontend::property::PropertyDef::with_kind).
    pub fn declared_kind(&self) -> Option<vqpy_models::ValueKind> {
        match self {
            ResolvedProperty::Defined(d) => d.value_kind,
            ResolvedProperty::Builtin(b) => Some(b.kind()),
        }
    }
}

/// Builder for [`VObjSchema`].
#[derive(Debug)]
pub struct VObjSchemaBuilder {
    schema: VObjSchema,
}

impl VObjSchemaBuilder {
    /// Sets the parent schema (single inheritance, like Python).
    pub fn parent(mut self, parent: Arc<VObjSchema>) -> Self {
        self.schema.parent = Some(parent);
        self
    }

    /// Sets the detector class labels this VObj matches.
    pub fn class_labels(mut self, labels: &[&str]) -> Self {
        self.schema.class_labels = labels.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Binds the detector model by zoo name.
    pub fn detector(mut self, model: impl Into<String>) -> Self {
        self.schema.detector = Some(model.into());
        self
    }

    /// Adds (or shadows) a property definition.
    pub fn property(mut self, def: PropertyDef) -> Self {
        self.schema.properties.insert(def.name.clone(), def);
        self
    }

    /// Finalizes the schema.
    pub fn build(self) -> Arc<VObjSchema> {
        Arc::new(self.schema)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::property::{NativeFn, PropertyDef};
    use vqpy_models::Value;

    fn vehicle() -> Arc<VObjSchema> {
        let center_to_direction: NativeFn = Arc::new(|_| Value::from("straight"));
        VObjSchema::builder("Vehicle")
            .class_labels(&["car", "bus", "truck"])
            .detector("yolox")
            .property(PropertyDef::stateless_model("color", "color_detect", true))
            .property(PropertyDef::stateful_native(
                "direction",
                &["center"],
                5,
                center_to_direction,
            ))
            .build()
    }

    #[test]
    fn builtin_and_defined_resolution() {
        let v = vehicle();
        assert!(matches!(
            v.resolve_property("color"),
            Some(ResolvedProperty::Defined(_))
        ));
        assert!(matches!(
            v.resolve_property("bbox"),
            Some(ResolvedProperty::Builtin(BuiltinProp::Bbox))
        ));
        assert!(v.resolve_property("nope").is_none());
    }

    #[test]
    fn inheritance_resolves_through_chain() {
        let v = vehicle();
        let red_car = VObjSchema::builder("RedCar").parent(Arc::clone(&v)).build();
        assert_eq!(red_car.detector(), Some("yolox"));
        assert_eq!(red_car.class_labels(), v.class_labels());
        assert!(matches!(
            red_car.resolve_property("color"),
            Some(ResolvedProperty::Defined(_))
        ));
        assert!(red_car.inherits_from("Vehicle"));
        assert!(red_car.inherits_from("RedCar"));
        assert!(!v.inherits_from("RedCar"));
    }

    #[test]
    fn sub_schema_shadows_property() {
        let v = vehicle();
        let special = VObjSchema::builder("Special")
            .parent(v)
            .property(PropertyDef::stateless_model("color", "my_color", false))
            .build();
        match special.resolve_property("color") {
            Some(ResolvedProperty::Defined(def)) => match &def.source {
                crate::frontend::property::PropertySource::Model(m) => assert_eq!(m, "my_color"),
                other => panic!("unexpected source {other:?}"),
            },
            other => panic!("unexpected resolution {other:?}"),
        }
    }

    #[test]
    fn dependency_order_is_topological() {
        let f: NativeFn = Arc::new(|_| Value::Null);
        let schema = VObjSchema::builder("T")
            .detector("yolox")
            .class_labels(&["car"])
            .property(PropertyDef::stateless_native(
                "a",
                &["bbox"],
                false,
                f.clone(),
            ))
            .property(PropertyDef::stateless_native("b", &["a"], false, f.clone()))
            .property(PropertyDef::stateless_native("c", &["b", "a"], false, f))
            .build();
        let order = schema.dependency_order(&["c".into()]).unwrap();
        let names: Vec<_> = order.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn dependency_cycles_are_detected() {
        let f: NativeFn = Arc::new(|_| Value::Null);
        let schema = VObjSchema::builder("T")
            .property(PropertyDef::stateless_native("a", &["b"], false, f.clone()))
            .property(PropertyDef::stateless_native("b", &["a"], false, f))
            .build();
        let err = schema.dependency_order(&["a".into()]).unwrap_err();
        assert!(matches!(err, VqpyError::CyclicDependency { .. }));
    }

    #[test]
    fn unknown_property_errors() {
        let v = vehicle();
        let err = v.dependency_order(&["ghost".into()]).unwrap_err();
        assert!(matches!(err, VqpyError::UnknownProperty { .. }));
    }

    #[test]
    fn missing_detector_is_an_error() {
        let s = VObjSchema::builder("NoDet").build();
        assert!(matches!(
            s.require_detector(),
            Err(VqpyError::MissingDetector(_))
        ));
    }

    #[test]
    fn all_properties_dedups_shadowed() {
        let v = vehicle();
        let f: NativeFn = Arc::new(|_| Value::Null);
        let sub = VObjSchema::builder("Sub")
            .parent(v)
            .property(PropertyDef::stateless_native("color", &[], false, f))
            .build();
        let props = sub.all_properties();
        let colors: Vec<_> = props.iter().filter(|p| p.name == "color").collect();
        assert_eq!(colors.len(), 1);
        // The sub definition wins.
        assert!(matches!(
            colors[0].source,
            crate::frontend::property::PropertySource::Native(_)
        ));
    }
}
