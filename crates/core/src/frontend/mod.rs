//! The video-object-oriented frontend (§3): `VObj`, `Relation`, `Query`,
//! predicates, higher-order composition, and the standard library.

pub mod compose;
pub mod library;
pub mod predicate;
pub mod property;
pub mod query;
pub mod relation;
pub mod typed;
pub mod vobj;
