//! The VQPy library (§2): commonly used VObjs, properties, relations, and
//! queries that serve as building blocks — `Vehicle`, `Person`, `Ball`,
//! native speed/velocity/direction properties, `SpeedQuery`,
//! `CollisionQuery`.
//!
//! The primary interface is *typed*: [`vehicle()`], [`person()`], and
//! [`ball()`] return [`Schema`] handles whose aliases carry named, typed
//! property accessors (`car.color()`, `car.speed()`, `person.action()`),
//! so library queries compose with compile-checked predicates. The raw
//! `*_schema()` constructors remain for the stringly escape hatch and for
//! deriving sub-VObjs.

use crate::error::VqpyError;
use crate::frontend::compose::{spatial_query, QueryExpr};
use crate::frontend::predicate::{CmpOp, Pred};
use crate::frontend::property::{NativeFn, PropertyDef};
use crate::frontend::query::Query;
use crate::frontend::relation::{distance_relation, RelationSchema};
use crate::frontend::typed::{Alias, Prop, Schema, TypedQuery};
use crate::frontend::vobj::VObjSchema;
use std::sync::Arc;
use vqpy_models::{Value, ValueKind};
use vqpy_video::geometry::Point;

/// Mean center displacement (pixels/frame) over the bbox history.
fn displacement_from_bbox_history(history: &[Value]) -> Option<Point> {
    let centers: Vec<Point> = history
        .iter()
        .filter_map(|v| v.as_bbox().map(|b| b.center()))
        .collect();
    if centers.len() < 2 {
        return None;
    }
    let n = (centers.len() - 1) as f32;
    let first = centers.first().unwrap();
    let last = centers.last().unwrap();
    Some(Point::new((last.x - first.x) / n, (last.y - first.y) / n))
}

/// Stateful native `speed` property: pixels/frame, smoothed over
/// `history_len` bbox samples (Figure 23's `velocity` UDF analog).
pub fn speed_prop(history_len: usize) -> PropertyDef {
    let f: NativeFn =
        Arc::new(
            |ctx| match displacement_from_bbox_history(ctx.dep_history("bbox")) {
                Some(d) => Value::Float(d.norm() as f64),
                None => Value::Null,
            },
        );
    PropertyDef::stateful_native("speed", &["bbox"], history_len, f).with_kind(ValueKind::Float)
}

/// Stateful native `velocity` property: per-frame displacement vector.
pub fn velocity_prop(history_len: usize) -> PropertyDef {
    let f: NativeFn =
        Arc::new(
            |ctx| match displacement_from_bbox_history(ctx.dep_history("bbox")) {
                Some(d) => Value::Point(d),
                None => Value::Null,
            },
        );
    PropertyDef::stateful_native("velocity", &["bbox"], history_len, f).with_kind(ValueKind::Point)
}

/// Stateful native `heading_change` property in degrees over the center
/// history (positive = turning right on screen); building block for native
/// direction classification (Figure 2's `direction`).
pub fn heading_change_prop(history_len: usize) -> PropertyDef {
    let f: NativeFn = Arc::new(|ctx| {
        let centers: Vec<Point> = ctx
            .dep_history("bbox")
            .iter()
            .filter_map(|v| v.as_bbox().map(|b| b.center()))
            .collect();
        if centers.len() < 3 {
            return Value::Null;
        }
        let mid = centers.len() / 2;
        let a = (centers[mid].x - centers[0].x, centers[mid].y - centers[0].y);
        let b = (
            centers[centers.len() - 1].x - centers[mid].x,
            centers[centers.len() - 1].y - centers[mid].y,
        );
        let cross = a.0 * b.1 - a.1 * b.0;
        let dot = a.0 * b.0 + a.1 * b.1;
        Value::Float(cross.atan2(dot).to_degrees() as f64)
    });
    PropertyDef::stateful_native("heading_change", &["bbox"], history_len, f)
        .with_kind(ValueKind::Float)
}

/// The library `Vehicle` VObj (Figure 2): yolox detection, model-computed
/// color/type/direction/plate, native speed. Color and type are *not*
/// marked intrinsic here — that is the user annotation §4.2/§5.1 study;
/// see [`vehicle_schema_intrinsic`].
pub fn vehicle_schema() -> Arc<VObjSchema> {
    VObjSchema::builder("Vehicle")
        .class_labels(&["car", "bus", "truck"])
        .detector("yolox")
        .property(
            PropertyDef::stateless_model("color", "color_detect", false).with_kind(ValueKind::Str),
        )
        .property(
            PropertyDef::stateless_model("vtype", "vtype_detect", false).with_kind(ValueKind::Str),
        )
        .property(
            PropertyDef::stateless_model("direction", "direction_model", false)
                .with_kind(ValueKind::Str),
        )
        .property(
            PropertyDef::stateless_model("plate", "plate_recognize", false)
                .with_kind(ValueKind::Str),
        )
        .property(speed_prop(3))
        .property(velocity_prop(3))
        .build()
}

/// The `Vehicle` VObj with `intrinsic=True` user annotations on color and
/// type (the "VQPy with annotation" configuration of §5.1).
pub fn vehicle_schema_intrinsic() -> Arc<VObjSchema> {
    // A sub-VObj of Vehicle that shadows color/type/plate with
    // intrinsic-annotated definitions — extensions registered on the
    // parent `Vehicle` still apply through inheritance.
    VObjSchema::builder("VehicleIntrinsic")
        .parent(vehicle_schema())
        .property(
            PropertyDef::stateless_model("color", "color_detect", true).with_kind(ValueKind::Str),
        )
        .property(
            PropertyDef::stateless_model("vtype", "vtype_detect", true).with_kind(ValueKind::Str),
        )
        .property(
            PropertyDef::stateless_model("plate", "plate_recognize", true)
                .with_kind(ValueKind::Str),
        )
        .build()
}

/// The library `Person` VObj: yolox detection, model-computed action and
/// re-id feature vector, native speed.
pub fn person_schema() -> Arc<VObjSchema> {
    VObjSchema::builder("Person")
        .class_labels(&["person"])
        .detector("yolox")
        .property(
            PropertyDef::stateless_model("action", "action_classify", false)
                .with_kind(ValueKind::Str),
        )
        .property(
            PropertyDef::stateless_model("feature", "reid_embed", true)
                .with_kind(ValueKind::FloatVec),
        )
        .property(speed_prop(3))
        .build()
}

/// The library `Ball` VObj.
pub fn ball_schema() -> Arc<VObjSchema> {
    VObjSchema::builder("Ball")
        .class_labels(&["ball"])
        .detector("yolox")
        .build()
}

/// Marker type for the library `Vehicle` schema family (plain and
/// intrinsic-annotated): `Alias<Vehicle>` carries the typed accessors
/// below.
#[derive(Debug, Clone, Copy)]
pub struct Vehicle;

/// Marker type for the library `Person` schema.
#[derive(Debug, Clone, Copy)]
pub struct Person;

/// Marker type for the library `Ball` schema.
#[derive(Debug, Clone, Copy)]
pub struct Ball;

/// Typed handle on [`vehicle_schema`]: the primary way to author vehicle
/// queries.
///
/// ```
/// use vqpy_core::frontend::library;
///
/// let car = library::vehicle().alias("car");
/// let pred = car.speed().gt(20.0) & car.color().eq("red");
/// assert!(pred.to_string().contains("car.speed"));
/// ```
pub fn vehicle() -> Schema<Vehicle> {
    Schema::new(vehicle_schema())
}

/// Typed handle on [`vehicle_schema_intrinsic`] (color/vtype/plate marked
/// intrinsic, unlocking per-object reuse). Same accessors as [`vehicle`].
pub fn vehicle_intrinsic() -> Schema<Vehicle> {
    Schema::new(vehicle_schema_intrinsic())
}

/// Typed handle on [`person_schema`].
pub fn person() -> Schema<Person> {
    Schema::new(person_schema())
}

/// Typed handle on [`ball_schema`].
pub fn ball() -> Schema<Ball> {
    Schema::new(ball_schema())
}

// The accessors below mint unchecked: the names and kinds are correct by
// construction for the library schemas, and a caller who pairs the marker
// with an unrelated raw schema (`Schema::<Vehicle>::new(ball_schema())`)
// gets a typed `UnknownProperty` at `Query::build()` instead of a panic.
impl Alias<Vehicle> {
    /// The model-computed color name (`"red"`, `"black"`, ...).
    pub fn color(&self) -> Prop<String> {
        self.unchecked("color")
    }

    /// The model-computed vehicle type (`"sedan"`, `"suv"`, ...).
    pub fn vtype(&self) -> Prop<String> {
        self.unchecked("vtype")
    }

    /// The model-computed movement direction label.
    pub fn direction(&self) -> Prop<String> {
        self.unchecked("direction")
    }

    /// The OCR'd license plate.
    pub fn plate(&self) -> Prop<String> {
        self.unchecked("plate")
    }

    /// Native speed in pixels/frame (stateful over the bbox history).
    pub fn speed(&self) -> Prop<f64> {
        self.unchecked("speed")
    }

    /// Native per-frame displacement vector.
    pub fn velocity(&self) -> Prop<Point> {
        self.unchecked("velocity")
    }
}

impl Alias<Person> {
    /// The model-computed action label (`"walking"`, `"standing"`, ...).
    pub fn action(&self) -> Prop<String> {
        self.unchecked("action")
    }

    /// The re-id embedding vector.
    pub fn feature(&self) -> Prop<Vec<f32>> {
        self.unchecked("feature")
    }

    /// Native speed in pixels/frame.
    pub fn speed(&self) -> Prop<f64> {
        self.unchecked("speed")
    }
}

/// The library `SpeedQuery` (used by Figure 8's car-run-away): objects of
/// `schema` moving faster than `threshold` px/frame.
pub fn speed_query(
    name: impl Into<String>,
    alias: &str,
    schema: Arc<VObjSchema>,
    threshold: f64,
) -> Result<Arc<Query>, VqpyError> {
    Query::builder(name)
        .vobj(alias, schema)
        .frame_constraint(Pred::gt(alias, "score", 0.5) & Pred::gt(alias, "speed", threshold))
        .frame_output(&[(alias, "track_id"), (alias, "bbox")])
        .build()
}

/// Typed `SpeedQuery`: same query as [`speed_query`], authored through a
/// typed alias and returning rows of `(track_id, bbox)`. Works for any
/// schema whose alias resolves a Float `speed` property.
///
/// # Errors
///
/// [`VqpyError::UnknownProperty`]/[`VqpyError::PropertyTypeMismatch`] if
/// the alias's schema does not declare a Float-decodable `speed`.
pub fn typed_speed_query<V>(
    name: impl Into<String>,
    alias: &Alias<V>,
    threshold: f64,
) -> Result<TypedQuery<(Option<i64>, vqpy_video::geometry::BBox)>, VqpyError> {
    let speed: Prop<f64> = alias.prop("speed")?;
    TypedQuery::builder(name)
        .object(alias)
        .filter(alias.score().gt(0.5) & speed.gt(threshold))
        .select((alias.track_id().optional(), alias.bbox()))
        .build()
}

/// The library `CollisionQuery` (Figure 8): a sub-query of the higher-order
/// `SpatialQuery` checking that the distance between the two objects is
/// below `threshold` pixels.
pub fn collision_query(
    name: impl Into<String>,
    q1: &Query,
    q1_alias: &str,
    q2: &Query,
    q2_alias: &str,
    threshold: f64,
) -> Result<QueryExpr, VqpyError> {
    let left = Arc::clone(
        &q1.vobj(q1_alias)
            .ok_or_else(|| VqpyError::UnknownAlias(q1_alias.to_owned()))?
            .schema,
    );
    let right = Arc::clone(
        &q2.vobj(q2_alias)
            .ok_or_else(|| VqpyError::UnknownAlias(q2_alias.to_owned()))?
            .schema,
    );
    let rel = distance_relation("collision_distance", left, right);
    spatial_query(
        name,
        q1,
        q2,
        rel,
        q1_alias,
        q2_alias,
        Pred::relation("collision_distance", "distance", CmpOp::Lt, threshold),
    )
}

/// The library person-ball interaction relation (Figure 4): property
/// `"interaction"` predicted by the UPT HOI model.
pub fn person_ball_interaction() -> Arc<RelationSchema> {
    RelationSchema::builder("person_ball_interaction", person_schema(), ball_schema())
        .hoi_property("interaction", "upt_hoi")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::property::PropertyCtx;
    use std::collections::HashMap;
    use vqpy_video::geometry::BBox;

    fn bbox_history(centers: &[(f32, f32)]) -> HashMap<String, Vec<Value>> {
        let mut m = HashMap::new();
        m.insert(
            "bbox".to_owned(),
            centers
                .iter()
                .map(|&(x, y)| Value::BBox(BBox::from_center(Point::new(x, y), 40.0, 20.0)))
                .collect(),
        );
        m
    }

    fn eval(def: &PropertyDef, deps: &HashMap<String, Vec<Value>>) -> Value {
        match &def.source {
            crate::frontend::property::PropertySource::Native(f) => {
                f(&PropertyCtx { deps, fps: 15 })
            }
            other => panic!("expected native, got {other:?}"),
        }
    }

    #[test]
    fn speed_from_history() {
        let def = speed_prop(3);
        let deps = bbox_history(&[(0.0, 0.0), (5.0, 0.0), (10.0, 0.0)]);
        assert_eq!(eval(&def, &deps), Value::Float(5.0));
    }

    #[test]
    fn speed_needs_two_samples() {
        let def = speed_prop(3);
        let deps = bbox_history(&[(0.0, 0.0)]);
        assert!(eval(&def, &deps).is_null());
    }

    #[test]
    fn velocity_direction_sign() {
        let def = velocity_prop(2);
        let deps = bbox_history(&[(0.0, 0.0), (3.0, -4.0)]);
        match eval(&def, &deps) {
            Value::Point(p) => {
                assert!((p.x - 3.0).abs() < 1e-5);
                assert!((p.y + 4.0).abs() < 1e-5);
            }
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn heading_change_detects_right_turn() {
        let def = heading_change_prop(5);
        // Moving east then south (right turn on screen).
        let deps = bbox_history(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (20.0, 0.0),
            (20.0, 10.0),
            (20.0, 20.0),
        ]);
        match eval(&def, &deps) {
            Value::Float(deg) => assert!(deg > 45.0, "expected strong right turn, got {deg}"),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn library_schemas_resolve_expected_properties() {
        let v = vehicle_schema();
        for p in ["color", "vtype", "direction", "plate", "speed", "velocity"] {
            assert!(v.resolve_property(p).is_some(), "Vehicle.{p}");
        }
        let p = person_schema();
        for prop in ["action", "feature", "speed"] {
            assert!(p.resolve_property(prop).is_some(), "Person.{prop}");
        }
    }

    #[test]
    fn intrinsic_annotation_differs() {
        let plain = vehicle_schema();
        let ann = vehicle_schema_intrinsic();
        let get_intrinsic = |s: &VObjSchema, p: &str| match s.resolve_property(p) {
            Some(crate::frontend::vobj::ResolvedProperty::Defined(d)) => d.kind.is_intrinsic(),
            _ => panic!("missing property"),
        };
        assert!(!get_intrinsic(&plain, "color"));
        assert!(get_intrinsic(&ann, "color"));
        assert!(get_intrinsic(&ann, "vtype"));
    }

    #[test]
    fn speed_query_builds() {
        let q = speed_query("Speeding", "car", vehicle_schema(), 20.0).unwrap();
        assert_eq!(q.vobjs().len(), 1);
        assert_eq!(q.frame_constraint().conjuncts().len(), 2);
    }

    #[test]
    fn collision_query_is_spatial() {
        let car = speed_query("Car", "car", vehicle_schema(), 0.0).unwrap();
        let person = Query::builder("P")
            .vobj("person", person_schema())
            .frame_constraint(Pred::gt("person", "score", 0.5))
            .build()
            .unwrap();
        let expr = collision_query("CarHitPerson", &car, "car", &person, "person", 120.0).unwrap();
        assert!(matches!(expr, QueryExpr::Spatial(_)));
    }
}
