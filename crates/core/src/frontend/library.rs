//! The VQPy library (§2): commonly used VObjs, properties, relations, and
//! queries that serve as building blocks — `Vehicle`, `Person`, `Ball`,
//! native speed/velocity/direction properties, `SpeedQuery`,
//! `CollisionQuery`.

use crate::error::VqpyError;
use crate::frontend::compose::{spatial_query, QueryExpr};
use crate::frontend::predicate::{CmpOp, Pred};
use crate::frontend::property::{NativeFn, PropertyDef};
use crate::frontend::query::Query;
use crate::frontend::relation::{distance_relation, RelationSchema};
use crate::frontend::vobj::VObjSchema;
use std::sync::Arc;
use vqpy_models::Value;
use vqpy_video::geometry::Point;

/// Mean center displacement (pixels/frame) over the bbox history.
fn displacement_from_bbox_history(history: &[Value]) -> Option<Point> {
    let centers: Vec<Point> = history
        .iter()
        .filter_map(|v| v.as_bbox().map(|b| b.center()))
        .collect();
    if centers.len() < 2 {
        return None;
    }
    let n = (centers.len() - 1) as f32;
    let first = centers.first().unwrap();
    let last = centers.last().unwrap();
    Some(Point::new((last.x - first.x) / n, (last.y - first.y) / n))
}

/// Stateful native `speed` property: pixels/frame, smoothed over
/// `history_len` bbox samples (Figure 23's `velocity` UDF analog).
pub fn speed_prop(history_len: usize) -> PropertyDef {
    let f: NativeFn =
        Arc::new(
            |ctx| match displacement_from_bbox_history(ctx.dep_history("bbox")) {
                Some(d) => Value::Float(d.norm() as f64),
                None => Value::Null,
            },
        );
    PropertyDef::stateful_native("speed", &["bbox"], history_len, f)
}

/// Stateful native `velocity` property: per-frame displacement vector.
pub fn velocity_prop(history_len: usize) -> PropertyDef {
    let f: NativeFn =
        Arc::new(
            |ctx| match displacement_from_bbox_history(ctx.dep_history("bbox")) {
                Some(d) => Value::Point(d),
                None => Value::Null,
            },
        );
    PropertyDef::stateful_native("velocity", &["bbox"], history_len, f)
}

/// Stateful native `heading_change` property in degrees over the center
/// history (positive = turning right on screen); building block for native
/// direction classification (Figure 2's `direction`).
pub fn heading_change_prop(history_len: usize) -> PropertyDef {
    let f: NativeFn = Arc::new(|ctx| {
        let centers: Vec<Point> = ctx
            .dep_history("bbox")
            .iter()
            .filter_map(|v| v.as_bbox().map(|b| b.center()))
            .collect();
        if centers.len() < 3 {
            return Value::Null;
        }
        let mid = centers.len() / 2;
        let a = (centers[mid].x - centers[0].x, centers[mid].y - centers[0].y);
        let b = (
            centers[centers.len() - 1].x - centers[mid].x,
            centers[centers.len() - 1].y - centers[mid].y,
        );
        let cross = a.0 * b.1 - a.1 * b.0;
        let dot = a.0 * b.0 + a.1 * b.1;
        Value::Float(cross.atan2(dot).to_degrees() as f64)
    });
    PropertyDef::stateful_native("heading_change", &["bbox"], history_len, f)
}

/// The library `Vehicle` VObj (Figure 2): yolox detection, model-computed
/// color/type/direction/plate, native speed. Color and type are *not*
/// marked intrinsic here — that is the user annotation §4.2/§5.1 study;
/// see [`vehicle_schema_intrinsic`].
pub fn vehicle_schema() -> Arc<VObjSchema> {
    VObjSchema::builder("Vehicle")
        .class_labels(&["car", "bus", "truck"])
        .detector("yolox")
        .property(PropertyDef::stateless_model("color", "color_detect", false))
        .property(PropertyDef::stateless_model("vtype", "vtype_detect", false))
        .property(PropertyDef::stateless_model(
            "direction",
            "direction_model",
            false,
        ))
        .property(PropertyDef::stateless_model(
            "plate",
            "plate_recognize",
            false,
        ))
        .property(speed_prop(3))
        .property(velocity_prop(3))
        .build()
}

/// The `Vehicle` VObj with `intrinsic=True` user annotations on color and
/// type (the "VQPy with annotation" configuration of §5.1).
pub fn vehicle_schema_intrinsic() -> Arc<VObjSchema> {
    // A sub-VObj of Vehicle that shadows color/type/plate with
    // intrinsic-annotated definitions — extensions registered on the
    // parent `Vehicle` still apply through inheritance.
    VObjSchema::builder("VehicleIntrinsic")
        .parent(vehicle_schema())
        .property(PropertyDef::stateless_model("color", "color_detect", true))
        .property(PropertyDef::stateless_model("vtype", "vtype_detect", true))
        .property(PropertyDef::stateless_model(
            "plate",
            "plate_recognize",
            true,
        ))
        .build()
}

/// The library `Person` VObj: yolox detection, model-computed action and
/// re-id feature vector, native speed.
pub fn person_schema() -> Arc<VObjSchema> {
    VObjSchema::builder("Person")
        .class_labels(&["person"])
        .detector("yolox")
        .property(PropertyDef::stateless_model(
            "action",
            "action_classify",
            false,
        ))
        .property(PropertyDef::stateless_model("feature", "reid_embed", true))
        .property(speed_prop(3))
        .build()
}

/// The library `Ball` VObj.
pub fn ball_schema() -> Arc<VObjSchema> {
    VObjSchema::builder("Ball")
        .class_labels(&["ball"])
        .detector("yolox")
        .build()
}

/// The library `SpeedQuery` (used by Figure 8's car-run-away): objects of
/// `schema` moving faster than `threshold` px/frame.
pub fn speed_query(
    name: impl Into<String>,
    alias: &str,
    schema: Arc<VObjSchema>,
    threshold: f64,
) -> Result<Arc<Query>, VqpyError> {
    Query::builder(name)
        .vobj(alias, schema)
        .frame_constraint(Pred::gt(alias, "score", 0.5) & Pred::gt(alias, "speed", threshold))
        .frame_output(&[(alias, "track_id"), (alias, "bbox")])
        .build()
}

/// The library `CollisionQuery` (Figure 8): a sub-query of the higher-order
/// `SpatialQuery` checking that the distance between the two objects is
/// below `threshold` pixels.
pub fn collision_query(
    name: impl Into<String>,
    q1: &Query,
    q1_alias: &str,
    q2: &Query,
    q2_alias: &str,
    threshold: f64,
) -> Result<QueryExpr, VqpyError> {
    let left = Arc::clone(
        &q1.vobj(q1_alias)
            .ok_or_else(|| VqpyError::UnknownAlias(q1_alias.to_owned()))?
            .schema,
    );
    let right = Arc::clone(
        &q2.vobj(q2_alias)
            .ok_or_else(|| VqpyError::UnknownAlias(q2_alias.to_owned()))?
            .schema,
    );
    let rel = distance_relation("collision_distance", left, right);
    spatial_query(
        name,
        q1,
        q2,
        rel,
        q1_alias,
        q2_alias,
        Pred::relation("collision_distance", "distance", CmpOp::Lt, threshold),
    )
}

/// The library person-ball interaction relation (Figure 4): property
/// `"interaction"` predicted by the UPT HOI model.
pub fn person_ball_interaction() -> Arc<RelationSchema> {
    RelationSchema::builder("person_ball_interaction", person_schema(), ball_schema())
        .hoi_property("interaction", "upt_hoi")
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::property::PropertyCtx;
    use std::collections::HashMap;
    use vqpy_video::geometry::BBox;

    fn bbox_history(centers: &[(f32, f32)]) -> HashMap<String, Vec<Value>> {
        let mut m = HashMap::new();
        m.insert(
            "bbox".to_owned(),
            centers
                .iter()
                .map(|&(x, y)| Value::BBox(BBox::from_center(Point::new(x, y), 40.0, 20.0)))
                .collect(),
        );
        m
    }

    fn eval(def: &PropertyDef, deps: &HashMap<String, Vec<Value>>) -> Value {
        match &def.source {
            crate::frontend::property::PropertySource::Native(f) => {
                f(&PropertyCtx { deps, fps: 15 })
            }
            other => panic!("expected native, got {other:?}"),
        }
    }

    #[test]
    fn speed_from_history() {
        let def = speed_prop(3);
        let deps = bbox_history(&[(0.0, 0.0), (5.0, 0.0), (10.0, 0.0)]);
        assert_eq!(eval(&def, &deps), Value::Float(5.0));
    }

    #[test]
    fn speed_needs_two_samples() {
        let def = speed_prop(3);
        let deps = bbox_history(&[(0.0, 0.0)]);
        assert!(eval(&def, &deps).is_null());
    }

    #[test]
    fn velocity_direction_sign() {
        let def = velocity_prop(2);
        let deps = bbox_history(&[(0.0, 0.0), (3.0, -4.0)]);
        match eval(&def, &deps) {
            Value::Point(p) => {
                assert!((p.x - 3.0).abs() < 1e-5);
                assert!((p.y + 4.0).abs() < 1e-5);
            }
            other => panic!("expected point, got {other:?}"),
        }
    }

    #[test]
    fn heading_change_detects_right_turn() {
        let def = heading_change_prop(5);
        // Moving east then south (right turn on screen).
        let deps = bbox_history(&[
            (0.0, 0.0),
            (10.0, 0.0),
            (20.0, 0.0),
            (20.0, 10.0),
            (20.0, 20.0),
        ]);
        match eval(&def, &deps) {
            Value::Float(deg) => assert!(deg > 45.0, "expected strong right turn, got {deg}"),
            other => panic!("expected float, got {other:?}"),
        }
    }

    #[test]
    fn library_schemas_resolve_expected_properties() {
        let v = vehicle_schema();
        for p in ["color", "vtype", "direction", "plate", "speed", "velocity"] {
            assert!(v.resolve_property(p).is_some(), "Vehicle.{p}");
        }
        let p = person_schema();
        for prop in ["action", "feature", "speed"] {
            assert!(p.resolve_property(prop).is_some(), "Person.{prop}");
        }
    }

    #[test]
    fn intrinsic_annotation_differs() {
        let plain = vehicle_schema();
        let ann = vehicle_schema_intrinsic();
        let get_intrinsic = |s: &VObjSchema, p: &str| match s.resolve_property(p) {
            Some(crate::frontend::vobj::ResolvedProperty::Defined(d)) => d.kind.is_intrinsic(),
            _ => panic!("missing property"),
        };
        assert!(!get_intrinsic(&plain, "color"));
        assert!(get_intrinsic(&ann, "color"));
        assert!(get_intrinsic(&ann, "vtype"));
    }

    #[test]
    fn speed_query_builds() {
        let q = speed_query("Speeding", "car", vehicle_schema(), 20.0).unwrap();
        assert_eq!(q.vobjs().len(), 1);
        assert_eq!(q.frame_constraint().conjuncts().len(), 2);
    }

    #[test]
    fn collision_query_is_spatial() {
        let car = speed_query("Car", "car", vehicle_schema(), 0.0).unwrap();
        let person = Query::builder("P")
            .vobj("person", person_schema())
            .frame_constraint(Pred::gt("person", "score", 0.5))
            .build()
            .unwrap();
        let expr = collision_query("CarHitPerson", &car, "car", &person, "person", 120.0).unwrap();
        assert!(matches!(expr, QueryExpr::Spatial(_)));
    }
}
