//! Relations between VObjs (Figures 3 and 4).
//!
//! A `RelationSchema` connects two VObj schemas and defines properties over
//! pairs of their instances — either native code over the two objects'
//! states (Figure 3's distance relation) or an HOI model from the zoo
//! (Figure 4's `PersonBallInteraction` via UPT).

use crate::frontend::vobj::VObjSchema;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use vqpy_models::Value;
use vqpy_video::geometry::BBox;

/// Inputs available to a native relation property.
#[derive(Debug)]
pub struct RelationCtx<'a> {
    pub left_bbox: BBox,
    pub right_bbox: BBox,
    /// Computed properties of the left object.
    pub left_props: &'a BTreeMap<String, Value>,
    /// Computed properties of the right object.
    pub right_props: &'a BTreeMap<String, Value>,
    pub fps: u32,
}

/// A native relation property implementation.
pub type NativeRelFn = Arc<dyn Fn(&RelationCtx<'_>) -> Value + Send + Sync>;

/// How a relation property is produced.
#[derive(Clone)]
pub enum RelationSource {
    /// Native code over the pair.
    Native(NativeRelFn),
    /// An HOI model: the property value is the interaction label predicted
    /// for the pair (`Null` when the model predicts none), e.g. `"hit"`.
    Hoi { model: String },
}

impl fmt::Debug for RelationSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelationSource::Native(_) => write!(f, "Native(<fn>)"),
            RelationSource::Hoi { model } => write!(f, "Hoi({model})"),
        }
    }
}

/// A property on a relation.
#[derive(Debug, Clone)]
pub struct RelationPropertyDef {
    pub name: String,
    pub source: RelationSource,
}

/// A relation between two VObj schemas, with inheritance support.
#[derive(Debug, Clone)]
pub struct RelationSchema {
    name: String,
    parent: Option<Arc<RelationSchema>>,
    left: Arc<VObjSchema>,
    right: Arc<VObjSchema>,
    properties: BTreeMap<String, RelationPropertyDef>,
}

impl RelationSchema {
    /// Starts building a relation between `left` and `right`.
    pub fn builder(
        name: impl Into<String>,
        left: Arc<VObjSchema>,
        right: Arc<VObjSchema>,
    ) -> RelationSchemaBuilder {
        RelationSchemaBuilder {
            schema: RelationSchema {
                name: name.into(),
                parent: None,
                left,
                right,
                properties: BTreeMap::new(),
            },
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Left-hand VObj schema.
    pub fn left(&self) -> &Arc<VObjSchema> {
        &self.left
    }

    /// Right-hand VObj schema.
    pub fn right(&self) -> &Arc<VObjSchema> {
        &self.right
    }

    /// Resolves a relation property through the inheritance chain.
    pub fn resolve_property(&self, name: &str) -> Option<&RelationPropertyDef> {
        if let Some(p) = self.properties.get(name) {
            return Some(p);
        }
        let mut cur = self.parent.as_deref();
        while let Some(s) = cur {
            if let Some(p) = s.properties.get(name) {
                return Some(p);
            }
            cur = s.parent.as_deref();
        }
        None
    }

    /// All visible properties (sub definitions shadow inherited ones).
    pub fn all_properties(&self) -> Vec<&RelationPropertyDef> {
        let mut seen = std::collections::HashSet::new();
        let mut out = Vec::new();
        let mut cur = Some(self);
        while let Some(s) = cur {
            for (n, d) in &s.properties {
                if seen.insert(n.clone()) {
                    out.push(d);
                }
            }
            cur = s.parent.as_deref();
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        out
    }
}

/// Builder for [`RelationSchema`].
#[derive(Debug)]
pub struct RelationSchemaBuilder {
    schema: RelationSchema,
}

impl RelationSchemaBuilder {
    /// Sets the parent relation (inherits its properties).
    pub fn parent(mut self, parent: Arc<RelationSchema>) -> Self {
        self.schema.parent = Some(parent);
        self
    }

    /// Adds a native pair property.
    pub fn native_property(mut self, name: impl Into<String>, f: NativeRelFn) -> Self {
        let name = name.into();
        self.schema.properties.insert(
            name.clone(),
            RelationPropertyDef {
                name,
                source: RelationSource::Native(f),
            },
        );
        self
    }

    /// Adds an HOI-model property (value = predicted interaction label).
    pub fn hoi_property(mut self, name: impl Into<String>, model: impl Into<String>) -> Self {
        let name = name.into();
        self.schema.properties.insert(
            name.clone(),
            RelationPropertyDef {
                name,
                source: RelationSource::Hoi {
                    model: model.into(),
                },
            },
        );
        self
    }

    /// Finalizes the relation schema.
    pub fn build(self) -> Arc<RelationSchema> {
        Arc::new(self.schema)
    }
}

/// The library's standard distance relation (Figure 3): property
/// `"distance"` = center distance of the two boxes in pixels.
pub fn distance_relation(
    name: impl Into<String>,
    left: Arc<VObjSchema>,
    right: Arc<VObjSchema>,
) -> Arc<RelationSchema> {
    let f: NativeRelFn = Arc::new(|ctx: &RelationCtx<'_>| {
        Value::Float(ctx.left_bbox.center_distance(&ctx.right_bbox) as f64)
    });
    RelationSchema::builder(name, left, right)
        .native_property("distance", f)
        .build()
}

/// The library's overlap relation: property `"iou"`.
pub fn overlap_relation(
    name: impl Into<String>,
    left: Arc<VObjSchema>,
    right: Arc<VObjSchema>,
) -> Arc<RelationSchema> {
    let f: NativeRelFn =
        Arc::new(|ctx: &RelationCtx<'_>| Value::Float(ctx.left_bbox.iou(&ctx.right_bbox) as f64));
    RelationSchema::builder(name, left, right)
        .native_property("iou", f)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqpy_video::geometry::Point;

    fn person() -> Arc<VObjSchema> {
        VObjSchema::builder("Person")
            .class_labels(&["person"])
            .detector("yolox")
            .build()
    }

    fn ball() -> Arc<VObjSchema> {
        VObjSchema::builder("Ball")
            .class_labels(&["ball"])
            .detector("yolox")
            .build()
    }

    #[test]
    fn distance_relation_computes_center_distance() {
        let rel = distance_relation("near", person(), ball());
        let def = rel.resolve_property("distance").unwrap();
        let left = BBox::from_center(Point::new(0.0, 0.0), 10.0, 10.0);
        let right = BBox::from_center(Point::new(30.0, 40.0), 10.0, 10.0);
        let empty = BTreeMap::new();
        let ctx = RelationCtx {
            left_bbox: left,
            right_bbox: right,
            left_props: &empty,
            right_props: &empty,
            fps: 15,
        };
        match &def.source {
            RelationSource::Native(f) => {
                assert_eq!(f(&ctx), Value::Float(50.0));
            }
            other => panic!("unexpected source {other:?}"),
        }
    }

    #[test]
    fn hoi_property_registers_model() {
        let rel = RelationSchema::builder("interact", person(), ball())
            .hoi_property("interaction", "upt_hoi")
            .build();
        let def = rel.resolve_property("interaction").unwrap();
        assert!(matches!(&def.source, RelationSource::Hoi { model } if model == "upt_hoi"));
    }

    #[test]
    fn relation_inheritance() {
        let base = distance_relation("near", person(), ball());
        let strict = RelationSchema::builder("very_near", person(), ball())
            .parent(base)
            .build();
        assert!(strict.resolve_property("distance").is_some());
        assert_eq!(strict.all_properties().len(), 1);
    }
}
