//! Predicate expressions over VObj and Relation properties.
//!
//! Supports the paper's logical operators (`&`, `|`, `!`) via Rust's
//! `BitAnd`/`BitOr`/`Not` overloads, so queries read like
//! `Pred::eq("car", "color", "red") & Pred::gt("car", "velocity", 1.0)`.

use std::cmp::Ordering;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::{BitAnd, BitOr, Not};
use vqpy_models::Value;

/// A reference to a property of a query alias, e.g. `car.color`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PropRef {
    pub alias: String,
    pub prop: String,
}

impl PropRef {
    /// Creates a reference.
    pub fn new(alias: impl Into<String>, prop: impl Into<String>) -> Self {
        Self {
            alias: alias.into(),
            prop: prop.into(),
        }
    }
}

impl fmt::Display for PropRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.alias, self.prop)
    }
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn test(&self, ord: Option<Ordering>, eq: bool) -> bool {
        match self {
            CmpOp::Eq => eq,
            CmpOp::Ne => !eq,
            CmpOp::Lt => ord == Some(Ordering::Less),
            CmpOp::Le => matches!(ord, Some(Ordering::Less | Ordering::Equal)),
            CmpOp::Gt => ord == Some(Ordering::Greater),
            CmpOp::Ge => matches!(ord, Some(Ordering::Greater | Ordering::Equal)),
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A boolean expression over properties.
#[derive(Debug, Clone)]
pub enum Pred {
    /// Always true (the empty constraint).
    True,
    /// Compare an alias property against a constant.
    Cmp {
        target: PropRef,
        op: CmpOp,
        value: Value,
    },
    /// Compare a named relation's property against a constant. Relations
    /// connect two aliases; evaluation happens at join time.
    RelationCmp {
        relation: String,
        prop: String,
        op: CmpOp,
        value: Value,
    },
    And(Box<Pred>, Box<Pred>),
    Or(Box<Pred>, Box<Pred>),
    Not(Box<Pred>),
}

/// A property environment used during evaluation: alias -> prop -> value,
/// plus relation props for the candidate pair binding.
#[derive(Debug, Default)]
pub struct PredEnv {
    pub objects: BTreeMap<String, BTreeMap<String, Value>>,
    pub relations: BTreeMap<String, BTreeMap<String, Value>>,
}

impl PredEnv {
    /// Value of `alias.prop` (`Null` when missing).
    pub fn value(&self, target: &PropRef) -> Value {
        self.objects
            .get(&target.alias)
            .and_then(|m| m.get(&target.prop))
            .cloned()
            .unwrap_or(Value::Null)
    }

    /// Value of a relation property (`Null` when missing).
    pub fn relation_value(&self, relation: &str, prop: &str) -> Value {
        self.relations
            .get(relation)
            .and_then(|m| m.get(prop))
            .cloned()
            .unwrap_or(Value::Null)
    }
}

impl Pred {
    /// `alias.prop == value`.
    pub fn eq(alias: &str, prop: &str, value: impl Into<Value>) -> Pred {
        Pred::Cmp {
            target: PropRef::new(alias, prop),
            op: CmpOp::Eq,
            value: value.into(),
        }
    }

    /// `alias.prop != value`.
    pub fn ne(alias: &str, prop: &str, value: impl Into<Value>) -> Pred {
        Pred::Cmp {
            target: PropRef::new(alias, prop),
            op: CmpOp::Ne,
            value: value.into(),
        }
    }

    /// `alias.prop > value`.
    pub fn gt(alias: &str, prop: &str, value: impl Into<Value>) -> Pred {
        Pred::Cmp {
            target: PropRef::new(alias, prop),
            op: CmpOp::Gt,
            value: value.into(),
        }
    }

    /// `alias.prop >= value`.
    pub fn ge(alias: &str, prop: &str, value: impl Into<Value>) -> Pred {
        Pred::Cmp {
            target: PropRef::new(alias, prop),
            op: CmpOp::Ge,
            value: value.into(),
        }
    }

    /// `alias.prop < value`.
    pub fn lt(alias: &str, prop: &str, value: impl Into<Value>) -> Pred {
        Pred::Cmp {
            target: PropRef::new(alias, prop),
            op: CmpOp::Lt,
            value: value.into(),
        }
    }

    /// `alias.prop <= value`.
    pub fn le(alias: &str, prop: &str, value: impl Into<Value>) -> Pred {
        Pred::Cmp {
            target: PropRef::new(alias, prop),
            op: CmpOp::Le,
            value: value.into(),
        }
    }

    /// `relation.prop OP value` (evaluated on object pairs at join time).
    pub fn relation(relation: &str, prop: &str, op: CmpOp, value: impl Into<Value>) -> Pred {
        Pred::RelationCmp {
            relation: relation.to_owned(),
            prop: prop.to_owned(),
            op,
            value: value.into(),
        }
    }

    /// Evaluates against an environment. Missing values make comparisons
    /// false (never true), matching the lazy-filter semantics of the
    /// backend: an object whose property has not been computed yet cannot
    /// pass a filter on that property.
    pub fn eval(&self, env: &PredEnv) -> bool {
        match self {
            Pred::True => true,
            Pred::Cmp { target, op, value } => {
                let actual = env.value(target);
                if actual.is_null() {
                    return false;
                }
                op.test(actual.compare(value), actual.loose_eq(value))
            }
            Pred::RelationCmp {
                relation,
                prop,
                op,
                value,
            } => {
                let actual = env.relation_value(relation, prop);
                if actual.is_null() {
                    return false;
                }
                op.test(actual.compare(value), actual.loose_eq(value))
            }
            Pred::And(a, b) => a.eval(env) && b.eval(env),
            Pred::Or(a, b) => a.eval(env) || b.eval(env),
            Pred::Not(a) => !a.eval(env),
        }
    }

    /// All property references in the expression.
    pub fn referenced_props(&self) -> BTreeSet<PropRef> {
        let mut out = BTreeSet::new();
        self.collect_props(&mut out);
        out
    }

    fn collect_props(&self, out: &mut BTreeSet<PropRef>) {
        match self {
            Pred::True | Pred::RelationCmp { .. } => {}
            Pred::Cmp { target, .. } => {
                out.insert(target.clone());
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_props(out);
                b.collect_props(out);
            }
            Pred::Not(a) => a.collect_props(out),
        }
    }

    /// All relation names referenced.
    pub fn referenced_relations(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_relations(&mut out);
        out
    }

    fn collect_relations(&self, out: &mut BTreeSet<String>) {
        match self {
            Pred::True | Pred::Cmp { .. } => {}
            Pred::RelationCmp { relation, .. } => {
                out.insert(relation.clone());
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_relations(out);
                b.collect_relations(out);
            }
            Pred::Not(a) => a.collect_relations(out),
        }
    }

    /// All `(relation, property)` pairs referenced, so query validation can
    /// reject a typo'd relation property at build time.
    pub fn referenced_relation_props(&self) -> BTreeSet<(String, String)> {
        let mut out = BTreeSet::new();
        self.collect_relation_props(&mut out);
        out
    }

    fn collect_relation_props(&self, out: &mut BTreeSet<(String, String)>) {
        match self {
            Pred::True | Pred::Cmp { .. } => {}
            Pred::RelationCmp { relation, prop, .. } => {
                out.insert((relation.clone(), prop.clone()));
            }
            Pred::And(a, b) | Pred::Or(a, b) => {
                a.collect_relation_props(out);
                b.collect_relation_props(out);
            }
            Pred::Not(a) => a.collect_relation_props(out),
        }
    }

    /// Splits the top-level conjunction into conjuncts.
    pub fn conjuncts(&self) -> Vec<&Pred> {
        match self {
            Pred::And(a, b) => {
                let mut out = a.conjuncts();
                out.extend(b.conjuncts());
                out
            }
            Pred::True => Vec::new(),
            other => vec![other],
        }
    }

    /// The single alias this predicate constrains, if it references exactly
    /// one alias and no relations. Such predicates can be pushed down to
    /// per-object filters.
    pub fn single_alias(&self) -> Option<String> {
        if !self.referenced_relations().is_empty() {
            return None;
        }
        let aliases: BTreeSet<String> = self
            .referenced_props()
            .into_iter()
            .map(|p| p.alias)
            .collect();
        if aliases.len() == 1 {
            aliases.into_iter().next()
        } else {
            None
        }
    }

    /// Conjunction of an iterator of predicates (`True` when empty).
    pub fn all(preds: impl IntoIterator<Item = Pred>) -> Pred {
        preds.into_iter().fold(Pred::True, |acc, p| match acc {
            Pred::True => p,
            acc => acc & p,
        })
    }

    /// Disjunction of an iterator of predicates (`!True` when empty: an
    /// empty disjunction holds for nothing).
    pub fn any(preds: impl IntoIterator<Item = Pred>) -> Pred {
        let mut iter = preds.into_iter();
        match iter.next() {
            None => !Pred::True,
            Some(first) => iter.fold(first, |acc, p| acc | p),
        }
    }
}

impl BitAnd for Pred {
    type Output = Pred;

    fn bitand(self, rhs: Pred) -> Pred {
        Pred::And(Box::new(self), Box::new(rhs))
    }
}

impl BitOr for Pred {
    type Output = Pred;

    fn bitor(self, rhs: Pred) -> Pred {
        Pred::Or(Box::new(self), Box::new(rhs))
    }
}

impl Not for Pred {
    type Output = Pred;

    fn not(self) -> Pred {
        Pred::Not(Box::new(self))
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::True => write!(f, "true"),
            Pred::Cmp { target, op, value } => write!(f, "{target} {op} {value}"),
            Pred::RelationCmp {
                relation,
                prop,
                op,
                value,
            } => write!(f, "{relation}.{prop} {op} {value}"),
            Pred::And(a, b) => write!(f, "({a} & {b})"),
            Pred::Or(a, b) => write!(f, "({a} | {b})"),
            Pred::Not(a) => write!(f, "!({a})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env_with(alias: &str, prop: &str, v: Value) -> PredEnv {
        let mut env = PredEnv::default();
        env.objects
            .entry(alias.to_owned())
            .or_default()
            .insert(prop.to_owned(), v);
        env
    }

    #[test]
    fn comparison_operators() {
        let env = env_with("car", "speed", Value::Float(2.0));
        assert!(Pred::gt("car", "speed", 1.0).eval(&env));
        assert!(!Pred::gt("car", "speed", 2.0).eval(&env));
        assert!(Pred::ge("car", "speed", 2.0).eval(&env));
        assert!(Pred::lt("car", "speed", 3.0).eval(&env));
        assert!(Pred::le("car", "speed", 2.0).eval(&env));
        assert!(Pred::ne("car", "speed", 1.0).eval(&env));
    }

    #[test]
    fn logical_operators_compose() {
        let env = env_with("car", "color", Value::from("red"));
        let red = Pred::eq("car", "color", "red");
        let blue = Pred::eq("car", "color", "blue");
        assert!((red.clone() | blue.clone()).eval(&env));
        assert!(!(red.clone() & blue.clone()).eval(&env));
        assert!((!blue).eval(&env));
        assert!((red & Pred::True).eval(&env));
    }

    #[test]
    fn missing_values_fail_comparisons_including_negated_equality() {
        let env = PredEnv::default();
        assert!(!Pred::eq("car", "color", "red").eval(&env));
        assert!(!Pred::ne("car", "color", "red").eval(&env));
        // But a Not around a failing comparison is true (standard negation).
        assert!((!Pred::eq("car", "color", "red")).eval(&env));
    }

    #[test]
    fn conjunct_splitting() {
        let p = Pred::eq("a", "x", 1i64) & Pred::eq("a", "y", 2i64) & Pred::eq("b", "z", 3i64);
        let cs = p.conjuncts();
        assert_eq!(cs.len(), 3);
        assert_eq!(Pred::True.conjuncts().len(), 0);
    }

    #[test]
    fn single_alias_detection() {
        let p = Pred::eq("car", "color", "red") & Pred::gt("car", "speed", 1.0);
        assert_eq!(p.single_alias(), Some("car".to_owned()));
        let cross = Pred::eq("car", "color", "red") & Pred::eq("person", "action", "walking");
        assert_eq!(cross.single_alias(), None);
        let rel = Pred::relation("near", "distance", CmpOp::Lt, 100.0);
        assert_eq!(rel.single_alias(), None);
    }

    #[test]
    fn referenced_props_and_relations() {
        let p = Pred::eq("car", "color", "red")
            & Pred::relation("near", "distance", CmpOp::Lt, 50.0)
            & !Pred::eq("person", "action", "standing");
        let props = p.referenced_props();
        assert!(props.contains(&PropRef::new("car", "color")));
        assert!(props.contains(&PropRef::new("person", "action")));
        assert_eq!(p.referenced_relations().len(), 1);
    }

    #[test]
    fn pred_all_folds() {
        let p = Pred::all(vec![]);
        assert!(matches!(p, Pred::True));
        let p = Pred::all(vec![Pred::eq("a", "x", 1i64)]);
        assert_eq!(p.conjuncts().len(), 1);
        let p = Pred::all(vec![Pred::eq("a", "x", 1i64), Pred::eq("a", "y", 2i64)]);
        assert_eq!(p.conjuncts().len(), 2);
    }

    #[test]
    fn display_is_readable() {
        let p = Pred::eq("car", "color", "red") & Pred::gt("car", "speed", 1.0);
        let s = p.to_string();
        assert!(s.contains("car.color == red"));
        assert!(s.contains("car.speed > 1"));
    }
}
