//! Event composition with higher-order queries (§3, Figure 8).
//!
//! `SpatialQuery`, `DurationQuery`, and `TemporalQuery` compose basic
//! queries into richer events. The composition rules are enforced at
//! construction:
//!
//! - **Rule 1**: `SpatialQuery` takes in only basic queries.
//! - **Rule 2**: `DurationQuery` takes in basic queries or `SpatialQuery`s.
//! - **Rule 3**: `TemporalQuery` takes in basic queries and all three
//!   higher-order queries (including itself).

use crate::error::{ComposeError, VqpyError};
use crate::frontend::predicate::Pred;
use crate::frontend::query::{Query, QueryBuilder};
use crate::frontend::relation::RelationSchema;
use std::sync::Arc;

/// A (possibly composed) query expression.
#[derive(Debug, Clone)]
pub enum QueryExpr {
    /// A basic query.
    Basic(Arc<Query>),
    /// A spatial composition, already lowered to a joint basic query whose
    /// frame constraint includes the generated relation predicate.
    Spatial(Arc<Query>),
    /// The base condition must hold for at least `min_frames` consecutive
    /// frames (gaps up to `max_gap` frames are tolerated, for detector
    /// flicker).
    Duration {
        base: Box<QueryExpr>,
        min_frames: u64,
        max_gap: u64,
    },
    /// `first` then `second`, with `second` starting at most
    /// `window_frames` after a `first` hit.
    Temporal {
        first: Box<QueryExpr>,
        second: Box<QueryExpr>,
        window_frames: u64,
    },
}

impl QueryExpr {
    /// Wraps a basic query.
    pub fn basic(q: Arc<Query>) -> QueryExpr {
        QueryExpr::Basic(q)
    }

    /// All basic engine queries underlying this expression, in evaluation
    /// order. The session executes these (shared) and then applies the
    /// composition combinators.
    pub fn base_queries(&self) -> Vec<Arc<Query>> {
        match self {
            QueryExpr::Basic(q) | QueryExpr::Spatial(q) => vec![Arc::clone(q)],
            QueryExpr::Duration { base, .. } => base.base_queries(),
            QueryExpr::Temporal { first, second, .. } => {
                let mut out = first.base_queries();
                out.extend(second.base_queries());
                out
            }
        }
    }

    /// A short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            QueryExpr::Basic(q) => q.name().to_owned(),
            QueryExpr::Spatial(q) => format!("spatial({})", q.name()),
            QueryExpr::Duration {
                base, min_frames, ..
            } => format!("duration({}, >={min_frames}f)", base.describe()),
            QueryExpr::Temporal {
                first,
                second,
                window_frames,
            } => format!(
                "sequence({} -> {}, <={window_frames}f)",
                first.describe(),
                second.describe()
            ),
        }
    }
}

/// Builds a `SpatialQuery` (Rule 1): merges two *basic* queries and a
/// relation between their primary aliases into one joint query whose frame
/// constraint is `q1 ∧ q2 ∧ relation-pred`.
///
/// # Errors
///
/// [`VqpyError::InvalidQuery`] if the queries share an alias, or any error
/// from joint-query validation.
pub fn spatial_query(
    name: impl Into<String>,
    q1: &Query,
    q2: &Query,
    relation: Arc<RelationSchema>,
    left_alias: &str,
    right_alias: &str,
    relation_pred: Pred,
) -> Result<QueryExpr, VqpyError> {
    for v2 in q2.vobjs() {
        if q1.vobj(&v2.alias).is_some() {
            return Err(VqpyError::InvalidQuery(format!(
                "spatial composition: alias `{}` declared by both sub-queries",
                v2.alias
            )));
        }
    }
    let mut b: QueryBuilder = Query::builder(name);
    for v in q1.vobjs().iter().chain(q2.vobjs()) {
        b = b.vobj(v.alias.clone(), Arc::clone(&v.schema));
    }
    for r in q1.relations().iter().chain(q2.relations()) {
        b = b.relation(
            Arc::clone(&r.schema),
            r.left_alias.clone(),
            r.right_alias.clone(),
        );
    }
    b = b.relation(relation, left_alias, right_alias);
    b = b.frame_constraint(q1.frame_constraint().clone());
    b = b.frame_constraint(q2.frame_constraint().clone());
    b = b.frame_constraint(relation_pred);
    let out: Vec<(String, String)> = q1
        .frame_output()
        .iter()
        .chain(q2.frame_output())
        .map(|p| (p.alias.clone(), p.prop.clone()))
        .collect();
    let refs: Vec<(&str, &str)> = out.iter().map(|(a, p)| (a.as_str(), p.as_str())).collect();
    b = b.frame_output(&refs);
    Ok(QueryExpr::Spatial(b.build()?))
}

/// Builds a `DurationQuery` (Rule 2): the base must be basic or spatial.
///
/// # Errors
///
/// [`ComposeError::DurationNeedsBasicOrSpatial`] for temporal or duration
/// bases; [`ComposeError::EmptyWindow`] when `min_frames == 0`.
pub fn duration_query(
    base: QueryExpr,
    min_frames: u64,
    max_gap: u64,
) -> Result<QueryExpr, VqpyError> {
    if min_frames == 0 {
        return Err(ComposeError::EmptyWindow.into());
    }
    match base {
        QueryExpr::Basic(_) | QueryExpr::Spatial(_) => Ok(QueryExpr::Duration {
            base: Box::new(base),
            min_frames,
            max_gap,
        }),
        _ => Err(ComposeError::DurationNeedsBasicOrSpatial.into()),
    }
}

/// Builds a `TemporalQuery` (Rule 3): any two query expressions, sequenced
/// within a window.
///
/// # Errors
///
/// [`ComposeError::EmptyWindow`] when `window_frames == 0`.
pub fn temporal_query(
    first: QueryExpr,
    second: QueryExpr,
    window_frames: u64,
) -> Result<QueryExpr, VqpyError> {
    if window_frames == 0 {
        return Err(ComposeError::EmptyWindow.into());
    }
    Ok(QueryExpr::Temporal {
        first: Box::new(first),
        second: Box::new(second),
        window_frames,
    })
}

/// Frames belonging to runs of at least `min_frames` hits, where gaps of up
/// to `max_gap` missing frames do not break a run. Input must be sorted.
pub fn duration_filter(hits: &[u64], min_frames: u64, max_gap: u64) -> Vec<u64> {
    let mut out = Vec::new();
    let mut run: Vec<u64> = Vec::new();
    let mut span_start = 0u64;
    for &f in hits {
        match run.last() {
            Some(&last) if f <= last + 1 + max_gap => run.push(f),
            Some(_) => {
                if run.last().unwrap() - span_start + 1 >= min_frames {
                    out.extend(run.iter().copied());
                }
                run.clear();
                run.push(f);
                span_start = f;
            }
            None => {
                run.push(f);
                span_start = f;
            }
        }
    }
    if let Some(&last) = run.last() {
        if last - span_start + 1 >= min_frames {
            out.extend(run);
        }
    }
    out
}

/// Sequential matches: for each hit `f2` of `second`, the latest hit `f1 <
/// f2` of `first` with `f2 - f1 <= window`. Inputs must be sorted.
pub fn temporal_join(first: &[u64], second: &[u64], window: u64) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    for &f2 in second {
        // Advance i to the last first-hit strictly before f2.
        while i + 1 < first.len() && first[i + 1] < f2 {
            i += 1;
        }
        if i < first.len() && first[i] < f2 && f2 - first[i] <= window {
            out.push((first[i], f2));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::predicate::CmpOp;
    use crate::frontend::relation::distance_relation;
    use crate::frontend::vobj::VObjSchema;

    fn vehicle() -> Arc<VObjSchema> {
        VObjSchema::builder("Vehicle")
            .class_labels(&["car"])
            .detector("yolox")
            .build()
    }

    fn person() -> Arc<VObjSchema> {
        VObjSchema::builder("Person")
            .class_labels(&["person"])
            .detector("yolox")
            .build()
    }

    fn basic(name: &str, alias: &str, schema: Arc<VObjSchema>) -> Arc<Query> {
        Query::builder(name)
            .vobj(alias, schema)
            .frame_constraint(Pred::gt(alias, "score", 0.5))
            .build()
            .unwrap()
    }

    #[test]
    fn spatial_merges_queries() {
        let q1 = basic("Car", "car", vehicle());
        let q2 = basic("Person", "person", person());
        let rel = distance_relation("near", vehicle(), person());
        let expr = spatial_query(
            "CarNearPerson",
            &q1,
            &q2,
            rel,
            "car",
            "person",
            Pred::relation("near", "distance", CmpOp::Lt, 150.0),
        )
        .unwrap();
        match &expr {
            QueryExpr::Spatial(q) => {
                assert_eq!(q.vobjs().len(), 2);
                assert_eq!(q.relations().len(), 1);
                assert_eq!(q.frame_constraint().conjuncts().len(), 3);
            }
            other => panic!("expected spatial, got {other:?}"),
        }
    }

    #[test]
    fn spatial_rejects_alias_collision() {
        let q1 = basic("A", "x", vehicle());
        let q2 = basic("B", "x", person());
        let rel = distance_relation("near", vehicle(), person());
        let err = spatial_query("Bad", &q1, &q2, rel, "x", "x", Pred::True).unwrap_err();
        assert!(matches!(err, VqpyError::InvalidQuery(_)));
    }

    #[test]
    fn rule2_duration_accepts_basic_and_spatial_only() {
        let q = QueryExpr::basic(basic("Car", "car", vehicle()));
        assert!(duration_query(q.clone(), 10, 0).is_ok());

        let temporal = temporal_query(q.clone(), q.clone(), 100).unwrap();
        let err = duration_query(temporal, 10, 0).unwrap_err();
        assert!(matches!(
            err,
            VqpyError::Compose(ComposeError::DurationNeedsBasicOrSpatial)
        ));

        // Duration of duration is also rejected.
        let d = duration_query(q, 10, 0).unwrap();
        assert!(duration_query(d, 5, 0).is_err());
    }

    #[test]
    fn rule3_temporal_accepts_everything() {
        let q = QueryExpr::basic(basic("Car", "car", vehicle()));
        let d = duration_query(q.clone(), 10, 0).unwrap();
        let t = temporal_query(q.clone(), d, 50).unwrap();
        // Temporal of temporal (itself) is allowed.
        assert!(temporal_query(t, q, 50).is_ok());
    }

    #[test]
    fn empty_windows_are_rejected() {
        let q = QueryExpr::basic(basic("Car", "car", vehicle()));
        assert!(matches!(
            duration_query(q.clone(), 0, 0),
            Err(VqpyError::Compose(ComposeError::EmptyWindow))
        ));
        assert!(matches!(
            temporal_query(q.clone(), q, 0),
            Err(VqpyError::Compose(ComposeError::EmptyWindow))
        ));
    }

    #[test]
    fn duration_filter_finds_long_runs() {
        let hits = [1, 2, 3, 4, 10, 11, 20, 21, 22, 23, 24, 25];
        assert_eq!(
            duration_filter(&hits, 4, 0),
            vec![1, 2, 3, 4, 20, 21, 22, 23, 24, 25]
        );
        assert_eq!(duration_filter(&hits, 7, 0), Vec::<u64>::new());
        // With gap tolerance 5, [1..4] and [10,11] merge into one span.
        let merged = duration_filter(&hits, 10, 5);
        assert!(merged.contains(&1) && merged.contains(&11));
    }

    #[test]
    fn duration_filter_edge_cases() {
        assert!(duration_filter(&[], 1, 0).is_empty());
        assert_eq!(duration_filter(&[5], 1, 0), vec![5]);
        assert!(duration_filter(&[5], 2, 0).is_empty());
    }

    #[test]
    fn temporal_join_respects_order_and_window() {
        let first = [10, 50, 100];
        let second = [5, 60, 140, 300];
        let pairs = temporal_join(&first, &second, 50);
        // 5 has no earlier first-hit; 60 pairs with 50; 140 pairs with 100;
        // 300 is out of window.
        assert_eq!(pairs, vec![(50, 60), (100, 140)]);
    }

    #[test]
    fn base_queries_are_collected_in_order() {
        let a = basic("A", "car", vehicle());
        let b = basic("B", "person", person());
        let t = temporal_query(
            QueryExpr::basic(Arc::clone(&a)),
            QueryExpr::basic(Arc::clone(&b)),
            100,
        )
        .unwrap();
        let names: Vec<_> = t
            .base_queries()
            .iter()
            .map(|q| q.name().to_owned())
            .collect();
        assert_eq!(names, vec!["A", "B"]);
        assert!(t.describe().contains("sequence"));
    }
}
