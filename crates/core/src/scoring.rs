//! Accuracy scoring: F1 over frame hit sets, and ground-truth frame-set
//! extraction from scenes (the evaluation methodology of §4.3 and §5).

use std::collections::BTreeSet;
use vqpy_video::scene::{GroundTruth, Scene};

/// Precision/recall/F1 over binary frame decisions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct F1Stats {
    pub tp: u64,
    pub fp: u64,
    pub fn_: u64,
    pub precision: f64,
    pub recall: f64,
    pub f1: f64,
}

/// Scores a predicted frame set against a reference frame set over the
/// universe `[0, total_frames)`.
pub fn f1_frames(predicted: &BTreeSet<u64>, reference: &BTreeSet<u64>) -> F1Stats {
    let tp = predicted.intersection(reference).count() as u64;
    let fp = predicted.len() as u64 - tp;
    let fn_ = reference.len() as u64 - tp;
    let precision = if tp + fp == 0 {
        // No positive predictions: perfect precision iff nothing to find.
        if reference.is_empty() {
            1.0
        } else {
            0.0
        }
    } else {
        tp as f64 / (tp + fp) as f64
    };
    let recall = if tp + fn_ == 0 {
        1.0
    } else {
        tp as f64 / (tp + fn_) as f64
    };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    F1Stats {
        tp,
        fp,
        fn_,
        precision,
        recall,
        f1,
    }
}

/// Frames of `scene` whose ground truth satisfies `pred`.
pub fn truth_frames(scene: &Scene, pred: impl Fn(&GroundTruth) -> bool) -> BTreeSet<u64> {
    (0..scene.frame_count())
        .filter(|&f| pred(&scene.truth_at(f)))
        .collect()
}

/// Positive rate of a frame set over a video of `total` frames.
pub fn positive_rate(set: &BTreeSet<u64>, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        set.len() as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u64]) -> BTreeSet<u64> {
        v.iter().copied().collect()
    }

    #[test]
    fn perfect_prediction() {
        let s = f1_frames(&set(&[1, 2, 3]), &set(&[1, 2, 3]));
        assert_eq!(s.f1, 1.0);
        assert_eq!(s.tp, 3);
        assert_eq!(s.fp, 0);
        assert_eq!(s.fn_, 0);
    }

    #[test]
    fn half_precision() {
        let s = f1_frames(&set(&[1, 2, 3, 4]), &set(&[1, 2]));
        assert_eq!(s.precision, 0.5);
        assert_eq!(s.recall, 1.0);
        assert!((s.f1 - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cases() {
        // Nothing predicted, nothing true: vacuous success.
        let s = f1_frames(&set(&[]), &set(&[]));
        assert_eq!(s.f1, 1.0);
        // Nothing predicted but positives exist: zero recall.
        let s = f1_frames(&set(&[]), &set(&[1]));
        assert_eq!(s.f1, 0.0);
        // Predictions but no positives: zero precision.
        let s = f1_frames(&set(&[1]), &set(&[]));
        assert_eq!(s.f1, 0.0);
    }

    #[test]
    fn positive_rate_basics() {
        assert_eq!(positive_rate(&set(&[1, 2]), 10), 0.2);
        assert_eq!(positive_rate(&set(&[]), 0), 0.0);
    }

    #[test]
    fn truth_frames_respects_predicate() {
        let scene = vqpy_video::Scene::generate(vqpy_video::presets::banff(), 3, 10.0);
        let all = truth_frames(&scene, |_| true);
        assert_eq!(all.len() as u64, scene.frame_count());
        let none = truth_frames(&scene, |_| false);
        assert!(none.is_empty());
    }
}
