//! Plan generation (§4.1): lowering queries to operator chains.
//!
//! A [`PlanDag`] is a topologically-ordered operator list (parallel branches
//! of the conceptual DAG are interleaved) plus per-query join specs. The
//! builder realizes the paper's lazy evaluation: properties are scheduled
//! cheapest-first within dependency constraints, and each single-alias
//! conjunct of the frame constraint becomes a VObj filter placed immediately
//! after the last property it needs.

use crate::backend::symbols::SymbolTable;
use crate::error::{Result, VqpyError};
use crate::frontend::predicate::{Pred, PropRef};
use crate::frontend::property::{BuiltinProp, PropertyKind, PropertySource};
use crate::frontend::query::{Aggregate, Query, RelationDecl};
use crate::frontend::vobj::{ResolvedProperty, VObjSchema};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::sync::Arc;
use vqpy_models::{ModelZoo, Value};

/// A declarative operator, instantiated by the executor.
#[derive(Debug, Clone)]
pub enum OpSpec {
    /// Differencing frame filter with a pixel-difference threshold.
    DiffFilter { threshold: f32 },
    /// Binary-classifier frame filter.
    BinaryFilter { model: String },
    /// Object detector feeding one or more aliases.
    Detect {
        detector: String,
        aliases: Vec<(String, Vec<String>)>,
    },
    /// Tracker for one alias.
    Track { alias: String },
    /// Property projector.
    Project { alias: String, prop: String },
    /// Fused projector + filter (operator fusion, §4.3).
    FusedProjectFilter {
        alias: String,
        prop: String,
        pred: Pred,
        required: bool,
    },
    /// VObj filter.
    Filter {
        alias: String,
        pred: Pred,
        required: bool,
    },
    /// Relation projector (index into [`PlanDag::relations`]).
    ProjectRelation { index: usize },
    /// Join for one query (index into [`PlanDag::joins`]).
    Join { index: usize },
}

impl OpSpec {
    /// Short label for plan dumps.
    pub fn label(&self) -> String {
        match self {
            OpSpec::DiffFilter { threshold } => format!("diff_filter(<{threshold})"),
            OpSpec::BinaryFilter { model } => format!("binary_filter({model})"),
            OpSpec::Detect { detector, aliases } => {
                let a: Vec<&str> = aliases.iter().map(|(x, _)| x.as_str()).collect();
                format!("detect({detector} -> {})", a.join(","))
            }
            OpSpec::Track { alias } => format!("track({alias})"),
            OpSpec::Project { alias, prop } => format!("project({alias}.{prop})"),
            OpSpec::FusedProjectFilter {
                alias, prop, pred, ..
            } => {
                format!("project+filter({alias}.{prop} | {pred})")
            }
            OpSpec::Filter { alias, pred, .. } => format!("filter({alias} | {pred})"),
            OpSpec::ProjectRelation { index } => format!("project_relation(#{index})"),
            OpSpec::Join { index } => format!("join(#{index})"),
        }
    }
}

/// Join target for one query in the plan.
#[derive(Debug, Clone)]
pub struct JoinSpec {
    pub query: Arc<Query>,
    /// Frame constraint, possibly rewritten (e.g. conjuncts implemented by
    /// a specialized detector are dropped).
    pub pred: Pred,
    /// Whether a frame with no match dies (single-query plans only).
    pub kills_frame: bool,
}

/// A compiled plan for one or more queries sharing a pipeline.
#[derive(Debug, Clone)]
pub struct PlanDag {
    pub ops: Vec<OpSpec>,
    pub joins: Vec<JoinSpec>,
    pub relations: Vec<RelationDecl>,
    /// Alias -> schema bindings.
    pub schemas: BTreeMap<String, Arc<VObjSchema>>,
    /// Interned alias/property names: execution keys reuse-cache probes by
    /// `u32` symbol instead of allocating strings (§4.2 hot path).
    pub symbols: SymbolTable,
    /// Human-readable variant label (e.g. `"baseline"`, `"+specialized"`).
    pub label: String,
}

impl PlanDag {
    /// One line per operator, in execution order.
    pub fn describe(&self) -> String {
        self.ops
            .iter()
            .map(|o| o.label())
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// A stable signature for plan/result caching.
    pub fn signature(&self) -> String {
        let queries: Vec<&str> = self.joins.iter().map(|j| j.query.name()).collect();
        format!("{}|{}|{}", queries.join("+"), self.label, self.describe())
    }

    /// Per-operator structural fingerprints, comparable *across* plans:
    /// unlike [`OpSpec::label`], index-valued specs (joins, relation
    /// projections) are expanded to the query/relation identity they point
    /// at. The serving layer uses these to dedup operator state when the
    /// super-plan is recompiled on query attach/detach — two ops with equal
    /// fingerprints compute the same subgraph, so common decode / detect /
    /// track / projection work executes once and stateful operators carry
    /// their cross-frame state over.
    pub fn op_fingerprints(&self) -> Vec<String> {
        self.ops
            .iter()
            .map(|o| match o {
                OpSpec::Join { index } => {
                    let j = &self.joins[*index];
                    format!("join({} | {})", j.query.name(), j.pred)
                }
                OpSpec::ProjectRelation { index } => {
                    format!("project_relation({})", self.relations[*index].name)
                }
                other => other.label(),
            })
            .collect()
    }

    /// Resolves a projected property's execution traits: its
    /// [`PropertyKind`] and whether it is model-backed. `None` for builtins
    /// and unresolvable names.
    fn prop_traits(&self, alias: &str, prop: &str) -> Option<(PropertyKind, bool)> {
        let schema = self.schemas.get(alias)?;
        match schema.resolve_property(prop) {
            Some(ResolvedProperty::Defined(def)) => {
                Some((def.kind, matches!(def.source, PropertySource::Model(_))))
            }
            _ => None,
        }
    }

    /// Whether a tail operator *sequences* the stream: it either carries
    /// cross-frame state that must observe frames in order (tracker,
    /// stateful sliding windows) or touches the shared reuse cache, whose
    /// hit pattern and LRU order are part of the results' byte-identity
    /// (intrinsic model projections, §4.2). Everything up to and including
    /// the last sequencing op stays in the ordered prep segment of the
    /// tail; see [`PlanDag::partition_tail`].
    pub fn op_is_sequencing(&self, op: &OpSpec) -> bool {
        match op {
            OpSpec::Track { .. } => true,
            OpSpec::Project { alias, prop } | OpSpec::FusedProjectFilter { alias, prop, .. } => {
                match self.prop_traits(alias, prop) {
                    Some((kind, is_model)) => {
                        kind.is_stateful() || (kind.is_intrinsic() && is_model)
                    }
                    // Unresolvable here means instantiation will fail anyway;
                    // stay conservative and keep it ordered.
                    None => true,
                }
            }
            OpSpec::Filter { .. } | OpSpec::ProjectRelation { .. } | OpSpec::Join { .. } => false,
            // Frame-level ops never appear in the tail; if one does, keep it
            // ordered.
            _ => true,
        }
    }

    /// Whether a tail operator may hoist into the parallel enrich stage:
    /// it is deterministic per object from the frame's own state — no
    /// cross-frame operator state, no reuse-cache access — so enrich
    /// workers can process disjoint batches concurrently without changing
    /// results. Stateless non-intrinsic projections (model or native) and
    /// plain object filters qualify; relation projections and joins stay in
    /// the sequential tail.
    pub fn op_is_hoistable(&self, op: &OpSpec) -> bool {
        match op {
            OpSpec::Filter { .. } => true,
            OpSpec::Project { alias, prop } | OpSpec::FusedProjectFilter { alias, prop, .. } => {
                match self.prop_traits(alias, prop) {
                    // Not stateful, and not an intrinsic model property
                    // (those read through the shared reuse cache, whose
                    // hit/eviction order is part of result identity).
                    Some((kind, is_model)) => {
                        !(kind.is_stateful() || (kind.is_intrinsic() && is_model))
                    }
                    None => false,
                }
            }
            _ => false,
        }
    }

    /// Splits the post-detect tail into `(prep, enrich, tail)` — the
    /// planner's hoisting decision (ROADMAP open item 2):
    ///
    /// - **prep** runs in frame order and ends at the *last* sequencing op
    ///   (see [`PlanDag::op_is_sequencing`]): the tracker plus every
    ///   stateful or reuse-cache-touching projection, in their original
    ///   relative order, so cache access order — and therefore hit/eviction
    ///   behavior — is byte-identical to an unsplit tail.
    /// - **enrich** is the maximal contiguous run of hoistable ops after
    ///   prep (see [`PlanDag::op_is_hoistable`]): order-free, cache-free
    ///   per-object projections and filters that executors may fan out
    ///   across parallel workers.
    /// - **tail** is the remainder (relation projections, joins): thin,
    ///   sequential, frame-ordered.
    ///
    /// Every op keeps its original position within its segment, and
    /// `prep ++ enrich ++ tail` is exactly the input slice, so running the
    /// three segments back-to-back on one thread is the unsplit tail.
    pub fn partition_tail<'a>(
        &self,
        tail: &'a [OpSpec],
    ) -> (&'a [OpSpec], &'a [OpSpec], &'a [OpSpec]) {
        let prep_len = tail
            .iter()
            .rposition(|o| self.op_is_sequencing(o))
            .map(|i| i + 1)
            .unwrap_or(0);
        let enrich_len = tail[prep_len..]
            .iter()
            .position(|o| !self.op_is_hoistable(o))
            .unwrap_or(tail.len() - prep_len);
        (
            &tail[..prep_len],
            &tail[prep_len..prep_len + enrich_len],
            &tail[prep_len + enrich_len..],
        )
    }
}

/// Substituting a specialized NN for a detector + attribute filter.
#[derive(Debug, Clone)]
pub struct SpecializedChoice {
    pub detector: String,
    /// The conjunct the specialized detector implements: `alias.prop == value`.
    pub prop: String,
    pub value: Value,
}

/// Knobs controlling plan construction; the optimizer toggles these to
/// generate candidate plans and the ablation benches toggle them to isolate
/// each optimization's contribution.
#[derive(Debug, Clone, Default)]
pub struct PlanOptions {
    /// Interleave filters with projections (lazy evaluation). When false,
    /// all properties are computed before any filtering (the handcrafted-
    /// pipeline shape) — predicate pull-up can then restore laziness.
    pub eager_filters: bool,
    /// Apply operator fusion after construction.
    pub fuse: bool,
    /// Apply predicate pull-up after construction.
    pub pullup: bool,
    /// Prepend a differencing frame filter.
    pub diff_filter: Option<f32>,
    /// Prepend binary-classifier frame filters (zoo names).
    pub binary_filters: Vec<String>,
    /// Per-alias specialized-NN substitutions.
    pub specialized: BTreeMap<String, SpecializedChoice>,
    /// Variant label for profiling output.
    pub label: String,
}

impl PlanOptions {
    /// The default VQPy configuration: lazy filters, fusion, pull-up.
    pub fn vqpy_default() -> Self {
        Self {
            eager_filters: false,
            fuse: true,
            pullup: true,
            diff_filter: None,
            binary_filters: Vec::new(),
            specialized: BTreeMap::new(),
            label: "baseline".into(),
        }
    }
}

/// Per-alias analysis extracted from the query set.
#[derive(Debug, Default)]
struct AliasNeeds {
    /// Properties that must be computed (transitive deps resolved later).
    props: BTreeSet<String>,
    /// Single-alias conjuncts filterable per object: `(pred, shared_by_all)`.
    conjuncts: Vec<(Pred, bool)>,
    needs_tracker: bool,
    /// Declared by every query in the plan.
    required_by_all: bool,
}

/// Builds a plan for `queries` executed as one shared pipeline.
///
/// # Errors
///
/// Propagates schema/property resolution failures; rejects alias
/// collisions where two queries bind the same alias to different schemas.
pub fn build_plan(queries: &[Arc<Query>], zoo: &ModelZoo, opts: &PlanOptions) -> Result<PlanDag> {
    if queries.is_empty() {
        return Err(VqpyError::InvalidQuery("no queries to plan".into()));
    }

    // ---- collect aliases and check schema consistency --------------------
    let mut schemas: BTreeMap<String, Arc<VObjSchema>> = BTreeMap::new();
    for q in queries {
        for v in q.vobjs() {
            match schemas.get(&v.alias) {
                Some(existing) if existing.name() != v.schema.name() => {
                    // Shared plans unify an alias through inheritance: the
                    // most-derived schema sees every ancestor's properties,
                    // so queries written against the parent still resolve.
                    if v.schema.inherits_from(existing.name()) {
                        schemas.insert(v.alias.clone(), Arc::clone(&v.schema));
                    } else if existing.inherits_from(v.schema.name()) {
                        // keep the existing, more-derived schema
                    } else {
                        return Err(VqpyError::InvalidQuery(format!(
                            "alias `{}` bound to unrelated VObjs `{}` and `{}`",
                            v.alias,
                            existing.name(),
                            v.schema.name()
                        )));
                    }
                }
                _ => {
                    schemas.insert(v.alias.clone(), Arc::clone(&v.schema));
                }
            }
        }
    }

    // ---- per-alias needs --------------------------------------------------
    let mut needs: BTreeMap<String, AliasNeeds> = BTreeMap::new();
    for alias in schemas.keys() {
        let required_by_all = queries.iter().all(|q| q.vobj(alias).is_some());
        needs.insert(
            alias.clone(),
            AliasNeeds {
                required_by_all,
                ..AliasNeeds::default()
            },
        );
    }

    let mut relations: Vec<RelationDecl> = Vec::new();
    for q in queries {
        for r in q.relations() {
            if !relations.iter().any(|x| x.name == r.name) {
                relations.push(r.clone());
            }
        }
    }

    // Conjunct bookkeeping: count how many queries carry each conjunct (by
    // display form) so shared plans only hard-filter universally-shared ones.
    let mut conjunct_count: HashMap<String, usize> = HashMap::new();
    for q in queries {
        for c in q.frame_constraint().conjuncts() {
            *conjunct_count.entry(c.to_string()).or_default() += 1;
        }
    }

    for q in queries {
        // Properties referenced anywhere.
        for p in q.frame_constraint().referenced_props() {
            record_prop(&mut needs, &p)?;
        }
        for p in q.frame_output() {
            record_prop(&mut needs, p)?;
        }
        if let Some(
            Aggregate::CountDistinctTracks { alias }
            | Aggregate::AvgPerFrame { alias }
            | Aggregate::MaxPerFrame { alias },
        ) = q.video_output()
        {
            if let Some(n) = needs.get_mut(alias) {
                n.needs_tracker = true;
            }
        }
        // Filterable conjuncts.
        for c in q.frame_constraint().conjuncts() {
            if let Some(alias) = c.single_alias() {
                // Skip conjuncts implemented by a specialized detector.
                if conjunct_implemented(c, &alias, opts) {
                    continue;
                }
                let shared = conjunct_count[&c.to_string()] == queries.len();
                if let Some(n) = needs.get_mut(&alias) {
                    let display = c.to_string();
                    if !n.conjuncts.iter().any(|(p, _)| p.to_string() == display) {
                        n.conjuncts.push((c.clone(), shared));
                    }
                }
            }
        }
    }

    // Properties fully implemented by a specialized detector need no
    // projection unless some other conjunct or output still reads them.
    for (alias, choice) in &opts.specialized {
        let used_elsewhere = queries.iter().any(|q| {
            q.frame_output()
                .iter()
                .any(|p| p.alias == *alias && p.prop == choice.prop)
                || q.frame_constraint().conjuncts().iter().any(|c| {
                    !conjunct_implemented(c, alias, opts)
                        && c.referenced_props()
                            .iter()
                            .any(|p| p.alias == *alias && p.prop == choice.prop)
                })
        });
        if !used_elsewhere {
            if let Some(n) = needs.get_mut(alias.as_str()) {
                n.props.remove(&choice.prop);
            }
        }
    }

    // Tracker requirements from property statefulness / intrinsic reuse.
    for (alias, n) in needs.iter_mut() {
        let schema = &schemas[alias];
        let wanted: Vec<String> = n.props.iter().cloned().collect();
        for def in schema.dependency_order(&wanted)? {
            if def.kind.is_stateful() || def.kind.is_intrinsic() {
                n.needs_tracker = true;
            }
        }
        if BuiltinProp::from_name("track_id").is_some() && n.props.contains("track_id") {
            n.needs_tracker = true;
        }
    }

    // ---- emit operator chain ----------------------------------------------
    let mut ops: Vec<OpSpec> = Vec::new();
    if let Some(thr) = opts.diff_filter {
        ops.push(OpSpec::DiffFilter { threshold: thr });
    }
    for m in &opts.binary_filters {
        ops.push(OpSpec::BinaryFilter { model: m.clone() });
    }

    // Detectors, grouped so one model invocation feeds all aliases using it.
    let mut detector_groups: BTreeMap<String, Vec<(String, Vec<String>)>> = BTreeMap::new();
    for (alias, schema) in &schemas {
        let detector = match opts.specialized.get(alias) {
            Some(s) => s.detector.clone(),
            None => schema.require_detector()?.to_owned(),
        };
        detector_groups
            .entry(detector)
            .or_default()
            .push((alias.clone(), schema.class_labels().to_vec()));
    }
    for (detector, aliases) in detector_groups {
        // Validate the model exists up front for a clean error.
        zoo.detector(&detector)?;
        ops.push(OpSpec::Detect { detector, aliases });
    }

    // Per-alias: builtin filters, tracker, then cost-ordered projections
    // with interleaved filters.
    for (alias, n) in &needs {
        let schema = &schemas[alias];
        let single_query = queries.len() == 1;
        // Shared disjunction pushdown bookkeeping (see
        // [`emit_shared_disjunction`]).
        let mut last_disjunction: Option<String> = None;

        let mut pending: Vec<(Pred, bool)> = n.conjuncts.clone();
        let mut available: BTreeSet<String> = ["bbox", "score", "class_label", "center"]
            .iter()
            .map(|s| s.to_string())
            .collect();

        // Filters satisfiable from built-ins go before the tracker
        // (lazy mode only; eager mode defers everything).
        if !opts.eager_filters {
            emit_ready_filters(&mut ops, alias, &mut pending, &available, single_query, n);
        }

        if n.needs_tracker {
            ops.push(OpSpec::Track {
                alias: alias.clone(),
            });
        }
        available.insert("track_id".into());
        if !opts.eager_filters {
            emit_ready_filters(&mut ops, alias, &mut pending, &available, single_query, n);
            emit_shared_disjunction(
                &mut ops,
                alias,
                queries,
                &available,
                &conjunct_count,
                opts,
                n,
                &mut last_disjunction,
            );
        }

        // Projections in dependency order, cheapest-first.
        let wanted: Vec<String> = n.props.iter().cloned().collect();
        let mut defs = schema.dependency_order(&wanted)?;
        if !opts.eager_filters {
            defs = cost_order(defs, zoo);
        }
        let mut filters_tail: Vec<OpSpec> = Vec::new();
        for def in defs {
            if available.contains(&def.name) {
                continue;
            }
            ops.push(OpSpec::Project {
                alias: alias.clone(),
                prop: def.name.clone(),
            });
            available.insert(def.name.clone());
            if opts.eager_filters {
                // Defer all filters to after every projection (handcrafted
                // pipeline shape); pull-up can later move them forward.
                continue;
            }
            emit_ready_filters(&mut ops, alias, &mut pending, &available, single_query, n);
            emit_shared_disjunction(
                &mut ops,
                alias,
                queries,
                &available,
                &conjunct_count,
                opts,
                n,
                &mut last_disjunction,
            );
        }
        if opts.eager_filters {
            let mut still: Vec<(Pred, bool)> = Vec::new();
            for (pred, shared) in pending.drain(..) {
                if pred
                    .referenced_props()
                    .iter()
                    .all(|p| available.contains(&p.prop))
                {
                    filters_tail.push(OpSpec::Filter {
                        alias: alias.clone(),
                        pred: pred.clone(),
                        required: (single_query || shared) && n.required_by_all,
                    });
                } else {
                    still.push((pred, shared));
                }
            }
            pending = still;
            ops.extend(filters_tail);
        }
        // Any conjunct left references props we could not compute: that is
        // a bug in needs collection.
        if let Some((pred, _)) = pending.first() {
            return Err(VqpyError::InvalidQuery(format!(
                "internal: filter `{pred}` never became evaluable"
            )));
        }
    }

    for (i, _) in relations.iter().enumerate() {
        ops.push(OpSpec::ProjectRelation { index: i });
    }

    let mut joins = Vec::new();
    for (qi, q) in queries.iter().enumerate() {
        let mut pred = q.frame_constraint().clone();
        for (alias, choice) in &opts.specialized {
            pred = drop_eq_conjunct(&pred, alias, &choice.prop);
        }
        joins.push(JoinSpec {
            query: Arc::clone(q),
            pred,
            kills_frame: queries.len() == 1,
        });
        ops.push(OpSpec::Join { index: qi });
    }

    // Intern every alias and property name the plan references, so the
    // executor can key per-track caches with `Copy` symbols.
    let mut symbols = SymbolTable::new();
    for alias in schemas.keys() {
        symbols.intern(alias);
    }
    for op in &ops {
        match op {
            OpSpec::Project { alias, prop } | OpSpec::FusedProjectFilter { alias, prop, .. } => {
                symbols.intern(alias);
                symbols.intern(prop);
            }
            _ => {}
        }
    }

    Ok(PlanDag {
        ops,
        joins,
        relations,
        schemas,
        symbols,
        label: if opts.label.is_empty() {
            "baseline".into()
        } else {
            opts.label.clone()
        },
    })
}

fn record_prop(needs: &mut BTreeMap<String, AliasNeeds>, p: &PropRef) -> Result<()> {
    let n = needs
        .get_mut(&p.alias)
        .ok_or_else(|| VqpyError::UnknownAlias(p.alias.clone()))?;
    if BuiltinProp::from_name(&p.prop).is_none() {
        n.props.insert(p.prop.clone());
    } else if p.prop == "track_id" {
        n.needs_tracker = true;
    }
    Ok(())
}

fn conjunct_implemented(c: &Pred, alias: &str, opts: &PlanOptions) -> bool {
    let Some(choice) = opts.specialized.get(alias) else {
        return false;
    };
    matches!(
        c,
        Pred::Cmp { target, op: crate::frontend::predicate::CmpOp::Eq, value }
            if target.alias == alias && target.prop == choice.prop && value.loose_eq(&choice.value)
    )
}

/// Shared disjunction pushdown. In a multi-query plan, query-specific
/// conjuncts cannot become node filters on their own (a node failing one
/// query may satisfy another), so expensive downstream projections would
/// run on every object. But the *disjunction over queries* of each query's
/// alias-local constraints is always safe: an object failing every arm
/// satisfies no query's frame constraint, so it can neither join nor feed
/// an aggregate (aggregates count only join-satisfying bindings).
///
/// Called after the tracker and after every projection with the props
/// available so far: each call emits the strongest disjunction currently
/// evaluable (e.g. after `color` and `vtype` project, the filter is
/// `OR_q(color == c_q & vtype == t_q)` — the true union of the queries'
/// survivor sets), and only when it strengthens the previously emitted
/// one. On the fig13 CVIP workload this prunes most objects before the
/// non-memoizable `direction` model runs, which is what keeps one shared
/// super-plan ahead of per-query sessions as query counts grow.
///
/// Arms deliberately exclude universally-shared conjuncts (those are
/// ordinary hard filters already) and conjuncts implemented by a
/// specialized detector. If any query has no evaluable alias-local
/// conjunct, no filter is emitted: that query accepts any object, so the
/// union is everything.
#[allow(clippy::too_many_arguments)]
fn emit_shared_disjunction(
    ops: &mut Vec<OpSpec>,
    alias: &str,
    queries: &[Arc<Query>],
    available: &BTreeSet<String>,
    conjunct_count: &HashMap<String, usize>,
    opts: &PlanOptions,
    needs: &AliasNeeds,
    last: &mut Option<String>,
) {
    if queries.len() < 2 {
        return;
    }
    let mut arms: Vec<Pred> = Vec::new();
    for q in queries {
        let mut conjs: Vec<Pred> = Vec::new();
        for c in q.frame_constraint().conjuncts() {
            if c.single_alias().as_deref() != Some(alias)
                || conjunct_implemented(c, alias, opts)
                || conjunct_count[&c.to_string()] == queries.len()
                || !c
                    .referenced_props()
                    .iter()
                    .all(|p| available.contains(&p.prop))
            {
                continue;
            }
            conjs.push(c.clone());
        }
        if conjs.is_empty() {
            return;
        }
        arms.push(Pred::all(conjs));
    }
    let mut seen = BTreeSet::new();
    let arms: Vec<Pred> = arms
        .into_iter()
        .filter(|p| seen.insert(p.to_string()))
        .collect();
    if arms.len() <= 1 {
        return;
    }
    let or = Pred::any(arms);
    let display = or.to_string();
    if last.as_deref() == Some(display.as_str()) {
        return;
    }
    *last = Some(display);
    ops.push(OpSpec::Filter {
        alias: alias.to_owned(),
        pred: or,
        required: needs.required_by_all,
    });
}

fn emit_ready_filters(
    ops: &mut Vec<OpSpec>,
    alias: &str,
    pending: &mut Vec<(Pred, bool)>,
    available: &BTreeSet<String>,
    single_query: bool,
    needs: &AliasNeeds,
) {
    let mut remaining = Vec::new();
    for (pred, shared) in pending.drain(..) {
        let ready = pred
            .referenced_props()
            .iter()
            .all(|p| available.contains(&p.prop));
        if ready && (single_query || shared) {
            ops.push(OpSpec::Filter {
                alias: alias.to_owned(),
                pred,
                required: needs.required_by_all,
            });
        } else if ready {
            // Shared plans drop query-specific conjuncts: they are evaluated
            // at that query's join instead (node kills would corrupt other
            // queries sharing the alias).
        } else {
            remaining.push((pred, shared));
        }
    }
    *pending = remaining;
}

/// Orders property definitions cheapest-first while respecting deps
/// (greedy Kahn's algorithm with min-cost selection).
///
/// Intrinsic properties are costed at a fraction of their model price:
/// the §4.2 reuse cache memoizes them per track, so their steady-state
/// per-frame cost is amortized near zero, and any filter they enable
/// should run *before* non-memoizable projections that pay full price on
/// every frame (e.g. CVIP's `direction` after `color`/`vtype`).
fn cost_order(
    defs: Vec<crate::frontend::property::PropertyDef>,
    zoo: &ModelZoo,
) -> Vec<crate::frontend::property::PropertyDef> {
    const INTRINSIC_AMORTIZATION: f64 = 0.1;
    let cost_of = |def: &crate::frontend::property::PropertyDef| -> f64 {
        let base = match &def.source {
            PropertySource::Model(m) => zoo.profile(m).map(|p| p.cost).unwrap_or(10.0),
            _ => 0.05,
        };
        if def.kind.is_intrinsic() {
            base * INTRINSIC_AMORTIZATION
        } else {
            base
        }
    };
    let names: BTreeSet<String> = defs.iter().map(|d| d.name.clone()).collect();
    let mut remaining = defs;
    let mut placed: BTreeSet<String> = BTreeSet::new();
    let mut out = Vec::new();
    while !remaining.is_empty() {
        // Ready = all in-set deps already placed.
        let mut best: Option<usize> = None;
        for (i, d) in remaining.iter().enumerate() {
            let ready = d
                .deps
                .iter()
                .all(|dep| !names.contains(dep) || placed.contains(dep));
            if !ready {
                continue;
            }
            match best {
                None => best = Some(i),
                Some(b) if cost_of(d) < cost_of(&remaining[b]) => best = Some(i),
                _ => {}
            }
        }
        let idx = best.expect("dependency_order output cannot deadlock");
        let def = remaining.remove(idx);
        placed.insert(def.name.clone());
        out.push(def);
    }
    out
}

/// Removes a top-level `alias.prop == _` conjunct from a predicate.
fn drop_eq_conjunct(pred: &Pred, alias: &str, prop: &str) -> Pred {
    let kept: Vec<Pred> = pred
        .conjuncts()
        .into_iter()
        .filter(|c| {
            !matches!(
                c,
                Pred::Cmp { target, op: crate::frontend::predicate::CmpOp::Eq, .. }
                    if target.alias == alias && target.prop == prop
            )
        })
        .cloned()
        .collect();
    Pred::all(kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::library;
    use crate::frontend::predicate::Pred;

    fn zoo() -> Arc<ModelZoo> {
        ModelZoo::standard()
    }

    fn red_car_query() -> Arc<Query> {
        Query::builder("RedCar")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.6) & Pred::eq("car", "color", "red"))
            .frame_output(&[("car", "track_id"), ("car", "bbox")])
            .build()
            .unwrap()
    }

    #[test]
    fn lazy_plan_interleaves_filters() {
        let plan = build_plan(&[red_car_query()], &zoo(), &PlanOptions::vqpy_default()).unwrap();
        let desc = plan.describe();
        // The score filter (builtin) must come before the color projection.
        let score_pos = desc.find("score").unwrap();
        let color_pos = desc.find("project(car.color)").unwrap();
        assert!(score_pos < color_pos, "plan:\n{desc}");
        // And a color filter appears after the color projection.
        let color_filter = desc.rfind("color == red").unwrap();
        assert!(color_filter > color_pos, "plan:\n{desc}");
    }

    #[test]
    fn eager_plan_defers_filters() {
        let mut opts = PlanOptions::vqpy_default();
        opts.eager_filters = true;
        let plan = build_plan(&[red_car_query()], &zoo(), &opts).unwrap();
        let desc = plan.describe();
        let project = desc.find("project(car.color)").unwrap();
        let filter = desc.find("filter(car | car.color == red").unwrap();
        assert!(filter > project);
        // score filter also after projections in eager mode.
        let score_filter = desc.find("car.score >").unwrap();
        assert!(score_filter > project, "plan:\n{desc}");
    }

    #[test]
    fn tracker_emitted_only_when_needed() {
        // Intrinsic color => tracker (for reuse). A query over plain score
        // with a non-intrinsic schema should skip the tracker.
        let schema = crate::frontend::vobj::VObjSchema::builder("Plain")
            .class_labels(&["car"])
            .detector("yolox")
            .build();
        let q = Query::builder("Any")
            .vobj("car", schema)
            .frame_constraint(Pred::gt("car", "score", 0.5))
            .build()
            .unwrap();
        let plan = build_plan(&[q], &zoo(), &PlanOptions::vqpy_default()).unwrap();
        assert!(!plan.describe().contains("track("), "{}", plan.describe());

        let plan2 = build_plan(&[red_car_query()], &zoo(), &PlanOptions::vqpy_default()).unwrap();
        assert!(plan2.describe().contains("track(car)"));
    }

    #[test]
    fn specialized_choice_drops_projection_and_rewrites_join() {
        let mut opts = PlanOptions::vqpy_default();
        opts.specialized.insert(
            "car".into(),
            SpecializedChoice {
                detector: "red_car_detector".into(),
                prop: "color".into(),
                value: Value::from("red"),
            },
        );
        let plan = build_plan(&[red_car_query()], &zoo(), &opts).unwrap();
        let desc = plan.describe();
        assert!(desc.contains("detect(red_car_detector"), "{desc}");
        assert!(!desc.contains("project(car.color)"), "{desc}");
        // Join predicate no longer mentions color.
        assert!(
            !plan.joins[0].pred.to_string().contains("color"),
            "{}",
            plan.joins[0].pred
        );
    }

    #[test]
    fn shared_plan_single_detector_multiple_joins() {
        let q1 = red_car_query();
        let q2 = Query::builder("GreenCar")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.6) & Pred::eq("car", "color", "green"))
            .build()
            .unwrap();
        let plan = build_plan(&[q1, q2], &zoo(), &PlanOptions::vqpy_default()).unwrap();
        let desc = plan.describe();
        assert_eq!(desc.matches("detect(").count(), 1, "{desc}");
        assert_eq!(desc.matches("join(").count(), 2, "{desc}");
        // The query-specific color conjuncts must NOT become node filters.
        assert!(!desc.contains("filter(car | car.color"), "{desc}");
        // But the shared score conjunct is filterable.
        assert!(desc.contains("car.score >"), "{desc}");
        // Color projected once for both queries.
        assert_eq!(desc.matches("project(car.color)").count(), 1, "{desc}");
    }

    #[test]
    fn alias_schema_conflict_is_rejected() {
        let q1 = red_car_query();
        let q2 = Query::builder("P")
            .vobj("car", library::person_schema())
            .frame_constraint(Pred::gt("car", "score", 0.5))
            .build()
            .unwrap();
        let err = build_plan(&[q1, q2], &zoo(), &PlanOptions::vqpy_default()).unwrap_err();
        assert!(matches!(err, VqpyError::InvalidQuery(_)));
    }

    #[test]
    fn frame_filters_lead_the_plan() {
        let mut opts = PlanOptions::vqpy_default();
        opts.diff_filter = Some(0.5);
        opts.binary_filters.push("no_red_on_road".into());
        let plan = build_plan(&[red_car_query()], &zoo(), &opts).unwrap();
        assert!(matches!(plan.ops[0], OpSpec::DiffFilter { .. }));
        assert!(matches!(plan.ops[1], OpSpec::BinaryFilter { .. }));
    }

    #[test]
    fn shared_plan_pushes_down_conjunct_disjunction() {
        // Both queries constrain car.color, so the shared plan may filter
        // nodes matching *neither* color before later work — and must not
        // hard-filter either color alone.
        let q1 = red_car_query();
        let q2 = Query::builder("GreenCar")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.6) & Pred::eq("car", "color", "green"))
            .build()
            .unwrap();
        let plan = build_plan(&[q1, q2], &zoo(), &PlanOptions::vqpy_default()).unwrap();
        let desc = plan.describe();
        let or_pos = desc
            .find("car.color == red | car.color == green")
            .unwrap_or_else(|| panic!("no disjunction filter in:\n{desc}"));
        let project_pos = desc.find("project(car.color)").expect("color projected");
        assert!(
            or_pos > project_pos,
            "disjunction before its input:\n{desc}"
        );
        // The join predicates still carry the per-query colors.
        assert!(plan.joins[0].pred.to_string().contains("red"));
        assert!(plan.joins[1].pred.to_string().contains("green"));
    }

    #[test]
    fn no_disjunction_when_a_query_is_unconstrained() {
        // The Any query accepts every car, so no disjunction can exclude
        // nodes on color.
        let q1 = red_car_query();
        let q2 = Query::builder("Any")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.6))
            .build()
            .unwrap();
        let plan = build_plan(&[q1, q2], &zoo(), &PlanOptions::vqpy_default()).unwrap();
        assert!(
            !plan.describe().contains(" | car.color"),
            "{}",
            plan.describe()
        );
    }

    #[test]
    fn intrinsic_projections_order_before_non_intrinsic_at_equal_cost() {
        // color (intrinsic, memoized per track) must project before
        // direction (non-intrinsic, paid per frame) despite equal model
        // cost: the reuse cache amortizes the former to ~0.
        let schema = crate::frontend::vobj::VObjSchema::builder("V")
            .class_labels(&["car"])
            .detector("yolox")
            .property(crate::frontend::property::PropertyDef::stateless_model(
                "color",
                "color_detect",
                true,
            ))
            .property(crate::frontend::property::PropertyDef::stateless_model(
                "direction",
                "direction_model",
                false,
            ))
            .build();
        let q = Query::builder("Both")
            .vobj("car", schema)
            .frame_constraint(
                Pred::eq("car", "color", "red") & Pred::eq("car", "direction", "straight"),
            )
            .build()
            .unwrap();
        let plan = build_plan(&[q], &zoo(), &PlanOptions::vqpy_default()).unwrap();
        let desc = plan.describe();
        let color = desc.find("car.color").unwrap();
        let direction = desc.find("car.direction").unwrap();
        assert!(color < direction, "{desc}");
    }

    #[test]
    fn tail_partition_hoists_non_intrinsic_projections() {
        // color: intrinsic model (cache-touching -> prep). direction:
        // non-intrinsic model (order-free -> enrich). Join stays in tail.
        let schema = crate::frontend::vobj::VObjSchema::builder("V")
            .class_labels(&["car"])
            .detector("yolox")
            .property(crate::frontend::property::PropertyDef::stateless_model(
                "color",
                "color_detect",
                true,
            ))
            .property(crate::frontend::property::PropertyDef::stateless_model(
                "direction",
                "direction_model",
                false,
            ))
            .build();
        let q = Query::builder("Both")
            .vobj("car", schema)
            .frame_constraint(
                Pred::eq("car", "color", "red") & Pred::eq("car", "direction", "straight"),
            )
            .build()
            .unwrap();
        let plan = build_plan(&[q], &zoo(), &PlanOptions::vqpy_default()).unwrap();
        let first_detect = plan
            .ops
            .iter()
            .position(|o| matches!(o, OpSpec::Detect { .. }))
            .unwrap();
        let tail = &plan.ops[first_detect + 1..];
        let (prep, enrich, rest) = plan.partition_tail(tail);
        let labels = |ops: &[OpSpec]| -> String {
            ops.iter().map(|o| o.label()).collect::<Vec<_>>().join("\n")
        };
        // Tracker and the intrinsic color projection stay ordered.
        assert!(labels(prep).contains("track(car)"), "{}", labels(prep));
        assert!(
            labels(prep).contains("project(car.color)"),
            "{}",
            labels(prep)
        );
        // The non-memoizable direction projection hoists into enrich
        // (filters over already-computed props hoist too — they only read
        // frame-local state).
        assert!(
            labels(enrich).contains("car.direction"),
            "{}",
            labels(enrich)
        );
        assert!(
            !labels(enrich).contains("project(car.color)")
                && !labels(enrich).contains("project+filter(car.color"),
            "cache-touching intrinsic projection must not hoist: {}",
            labels(enrich)
        );
        // Joins stay in the sequential tail.
        assert!(labels(rest).contains("join"), "{}", labels(rest));
        // The three segments reassemble the original tail exactly.
        assert_eq!(prep.len() + enrich.len() + rest.len(), tail.len());
    }

    #[test]
    fn tail_partition_keeps_stateful_projections_in_prep() {
        // A stateful property (speed-style sliding window) after the
        // intrinsics must extend prep past it: its per-track history is
        // kill-sensitive and frame-ordered.
        let plan = build_plan(
            &[Query::builder("Fast")
                .vobj("car", library::vehicle_schema())
                .frame_constraint(Pred::gt("car", "speed", 5.0))
                .build()
                .unwrap()],
            &zoo(),
            &PlanOptions::vqpy_default(),
        )
        .unwrap();
        let first_detect = plan
            .ops
            .iter()
            .position(|o| matches!(o, OpSpec::Detect { .. }))
            .unwrap();
        let (prep, enrich, _) = plan.partition_tail(&plan.ops[first_detect + 1..]);
        let projects_speed = |o: &OpSpec| {
            matches!(
                o,
                OpSpec::Project { prop, .. } | OpSpec::FusedProjectFilter { prop, .. }
                    if prop == "speed"
            )
        };
        assert!(
            prep.iter().any(projects_speed),
            "{:?}",
            prep.iter().map(|o| o.label()).collect::<Vec<_>>()
        );
        assert!(
            !enrich.iter().any(projects_speed),
            "stateful projection must not hoist"
        );
    }

    #[test]
    fn cheapest_property_first() {
        // plate (7.0) should be projected after color (5.0) when both needed.
        let q = Query::builder("Both")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::eq("car", "color", "red") & Pred::eq("car", "plate", "X"))
            .build()
            .unwrap();
        let plan = build_plan(&[q], &zoo(), &PlanOptions::vqpy_default()).unwrap();
        let desc = plan.describe();
        let color = desc.find("project(car.color)").unwrap();
        let plate = desc.find("project(car.plate)").unwrap();
        assert!(color < plate, "{desc}");
    }
}
