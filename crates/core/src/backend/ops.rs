//! The six operator families of §4.1 — frame filter, object detector,
//! object tracker, projector, object filter, and join — implemented as
//! stateful pipeline stages over [`FrameSlot`]s.
//!
//! The video-reader operator is the executor's frame loop itself; the
//! projector operator realizes lazy evaluation (compute a property, filter,
//! only then compute the next) and intrinsic-property reuse (§4.2).

use crate::backend::graph::{Edge, EdgeKind, FrameGraph, NodeId, VObjNode};
use crate::backend::reuse::ReuseCache;
use crate::backend::symbols::{Istr, Sym};
use crate::error::{Result, VqpyError};
use crate::frontend::predicate::{Pred, PredEnv};
use crate::frontend::property::{PropertyCtx, PropertyDef, PropertyKind, PropertySource};
use crate::frontend::query::RelationDecl;
use crate::frontend::relation::{RelationCtx, RelationSource};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Arc;
use vqpy_models::{Classifier, Clock, Detector, FrameClassifier, HoiModel, ModelZoo, Value};
use vqpy_tracker::{SortTracker, TrackId, TrackerParams};
use vqpy_video::frame::{Frame, PixelBuffer};

/// One frame moving through the pipeline.
///
/// Slots are *workspaces*: the executor keeps a pool of them and calls
/// [`FrameSlot::reset`] to load the next frame instead of reallocating the
/// graph and match buffers per frame (§4.1's batched execution keeps the
/// hot loop allocation-light).
#[derive(Debug)]
pub struct FrameSlot {
    pub frame: Frame,
    pub graph: FrameGraph,
    /// Dead slots are skipped by all later operators.
    pub alive: bool,
    /// Join results, indexed by the plan's join index (see
    /// [`crate::backend::plan::PlanDag::joins`]).
    pub matches: Vec<Vec<MatchCombo>>,
}

impl FrameSlot {
    /// Wraps a frame for pipeline processing.
    pub fn new(frame: Frame) -> Self {
        Self {
            frame,
            graph: FrameGraph::new(),
            alive: true,
            matches: Vec::new(),
        }
    }

    /// Reloads this slot with a new frame, clearing per-frame state while
    /// keeping the graph and match buffers' allocations.
    pub fn reset(&mut self, frame: Frame) {
        self.frame = frame;
        self.graph.clear();
        self.alive = true;
        for m in &mut self.matches {
            m.clear();
        }
    }

    /// Ensures `matches` has one (cleared) bucket per join in the plan.
    pub fn prepare_joins(&mut self, joins: usize) {
        if self.matches.len() != joins {
            self.matches.resize_with(joins, Vec::new);
        }
    }
}

/// One satisfying binding of query aliases to graph nodes.
#[derive(Debug, Clone)]
pub struct MatchCombo {
    pub bindings: BTreeMap<String, NodeId>,
}

/// Mutable execution context shared by all operators.
pub struct ExecCtx<'a> {
    pub zoo: &'a ModelZoo,
    pub clock: &'a Clock,
    pub fps: u32,
    pub reuse: &'a mut ReuseCache,
    /// Whether intrinsic-property reuse is enabled (§4.2 toggle).
    pub enable_reuse: bool,
    /// The model-dispatch boundary: how detect-, binary-filter-, and
    /// classify-stage model invocations are issued (see
    /// [`crate::backend::dispatch`]). A serving supervisor swaps in a
    /// cross-stream batcher here; everything else uses the direct path.
    pub dispatch: &'a dyn crate::backend::dispatch::ModelDispatch,
    /// Span tracer for dispatch-level instrumentation. Disabled by
    /// default (one atomic load per would-be span); the serving layer
    /// installs an enabled handle via
    /// [`StageOps`](crate::backend::exec::StageOps).
    pub tracer: &'a vqpy_obs::Tracer,
}

/// Cross-frame operator state, extracted so a serving layer can carry it
/// across plan recompiles: when a query attaches or detaches mid-stream,
/// the recompiled super-plan's operators with matching
/// [`Operator::state_key`]s inherit the old state, keeping surviving
/// queries' results byte-identical to an uninterrupted run.
///
/// `Clone` gives the serving layer a cheap checkpoint: state is cloned
/// before each fallible segment so a panicking worker can restart from
/// exactly the pre-segment state.
#[derive(Debug, Clone)]
pub enum OpState {
    /// [`DiffFrameFilter`]: the last kept frame's pixels.
    DiffFilter { last_kept: Option<PixelBuffer> },
    /// [`TrackOp`]: the tracker and its motion-edge bookkeeping.
    Track {
        tracker: SortTracker,
        last_seen: HashMap<TrackId, u64>,
    },
    /// [`ProjectOp`]: per-track sliding windows of stateful dependencies.
    Project {
        history: HashMap<TrackId, VecDeque<BTreeMap<String, Value>>>,
    },
}

/// A pipeline stage. Operators keep their own cross-frame state (trackers,
/// history windows, previous pixels) and must therefore observe frames in
/// order.
pub trait Operator: Send {
    /// Operator name for plan dumps and metrics.
    fn name(&self) -> String;
    /// Processes one slot. Dead slots are not passed in.
    fn process(&mut self, slot: &mut FrameSlot, ctx: &mut ExecCtx<'_>) -> Result<()>;
    /// Processes a batch of slots in frame order (§4.1's batched
    /// execution). The default loops [`Operator::process`] over the live
    /// slots; model-backed operators override it to issue one physical
    /// batched invocation, amortizing per-invocation overhead. Results must
    /// be identical to the frame-at-a-time path.
    fn process_batch(&mut self, slots: &mut [FrameSlot], ctx: &mut ExecCtx<'_>) -> Result<()> {
        for slot in slots.iter_mut() {
            if !slot.alive && !self.wants_dead_frames() {
                continue;
            }
            self.process(slot, ctx)?;
        }
        Ok(())
    }
    /// Whether the operator must see every frame (even ones a frame filter
    /// would drop) to keep its cross-frame state consistent. Trackers
    /// return false: they simply miss filtered frames, like real systems.
    fn wants_dead_frames(&self) -> bool {
        false
    }
    /// Stable identity of this operator's cross-frame state, independent of
    /// plan-local details like fusion or join indices. Two operators with
    /// the same key compute the same stream function, so their state may be
    /// transplanted across plan recompiles. `None` means stateless: the
    /// operator can always be re-instantiated fresh.
    fn state_key(&self) -> Option<String> {
        None
    }
    /// Extracts the cross-frame state for carry-over, leaving this operator
    /// reset. Only meaningful when [`Operator::state_key`] is `Some`.
    fn export_state(&mut self) -> Option<OpState> {
        None
    }
    /// Installs state previously exported by an operator with the same
    /// [`Operator::state_key`]. Mismatched variants are ignored.
    fn import_state(&mut self, _state: OpState) {}
}

// ---------------------------------------------------------------------------
// Frame filters
// ---------------------------------------------------------------------------

/// Virtual cost of the native frame-differencing computation per frame.
pub const DIFF_FILTER_COST: f64 = 0.3;

/// Differencing-based frame filter (Figure 12): drops frames that are
/// near-identical to the last *kept* frame.
pub struct DiffFrameFilter {
    threshold: f32,
    last_kept: Option<PixelBuffer>,
}

impl DiffFrameFilter {
    /// Creates the filter; frames with mean absolute pixel difference below
    /// `threshold` (0-255 scale) are dropped.
    pub fn new(threshold: f32) -> Self {
        Self {
            threshold,
            last_kept: None,
        }
    }
}

impl Operator for DiffFrameFilter {
    fn name(&self) -> String {
        format!("diff_frame_filter(<{})", self.threshold)
    }

    fn process(&mut self, slot: &mut FrameSlot, ctx: &mut ExecCtx<'_>) -> Result<()> {
        ctx.clock.charge_labeled("diff_filter", DIFF_FILTER_COST);
        match &self.last_kept {
            Some(prev) if prev.mean_abs_diff(&slot.frame.pixels) < self.threshold => {
                slot.alive = false;
            }
            _ => {
                self.last_kept = Some(slot.frame.pixels.clone());
            }
        }
        Ok(())
    }

    fn state_key(&self) -> Option<String> {
        Some(format!("diff_filter(<{})", self.threshold))
    }

    fn export_state(&mut self) -> Option<OpState> {
        Some(OpState::DiffFilter {
            last_kept: self.last_kept.take(),
        })
    }

    fn import_state(&mut self, state: OpState) {
        if let OpState::DiffFilter { last_kept } = state {
            self.last_kept = last_kept;
        }
    }
}

/// Binary-classifier frame filter (Figure 11's `no_red_on_road`).
pub struct BinaryFilterOp {
    model: Arc<dyn FrameClassifier>,
}

impl BinaryFilterOp {
    /// Wraps a zoo frame classifier as a filter operator.
    pub fn new(model: Arc<dyn FrameClassifier>) -> Self {
        Self { model }
    }
}

impl Operator for BinaryFilterOp {
    fn name(&self) -> String {
        format!("binary_filter({})", self.model.profile().name)
    }

    fn process(&mut self, slot: &mut FrameSlot, ctx: &mut ExecCtx<'_>) -> Result<()> {
        let frames = [&slot.frame];
        let _span = ctx
            .tracer
            .span("dispatch", "dispatch:predict")
            .arg("model", &self.model.profile().name)
            .arg("frame", slot.frame.index);
        if !ctx.dispatch.predict(&self.model, &frames, ctx.clock)?[0] {
            slot.alive = false;
        }
        Ok(())
    }

    fn process_batch(&mut self, slots: &mut [FrameSlot], ctx: &mut ExecCtx<'_>) -> Result<()> {
        let live: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].alive).collect();
        if live.is_empty() {
            return Ok(());
        }
        let frames: Vec<&Frame> = live.iter().map(|&i| &slots[i].frame).collect();
        let _span = ctx
            .tracer
            .span("dispatch", "dispatch:predict")
            .arg("model", &self.model.profile().name)
            .arg("frame", frames[0].index)
            .arg("items", frames.len());
        let verdicts = ctx.dispatch.predict(&self.model, &frames, ctx.clock)?;
        for (&i, keep) in live.iter().zip(verdicts) {
            if !keep {
                slots[i].alive = false;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Detection
// ---------------------------------------------------------------------------

/// Object detector operator. One physical model invocation can feed several
/// aliases (multi-query sharing): each detection becomes a node for every
/// alias whose class labels match.
pub struct DetectOp {
    detector: Arc<dyn Detector>,
    /// `(alias, class labels)` fed by this detector, interned up front so
    /// node construction in [`DetectOp::populate`] is allocation-free.
    aliases: Vec<(Istr, Vec<Istr>)>,
}

impl DetectOp {
    /// Creates a detect operator feeding `aliases`.
    pub fn new(detector: Arc<dyn Detector>, aliases: Vec<(String, Vec<String>)>) -> Self {
        let aliases = aliases
            .into_iter()
            .map(|(a, labels)| (Istr::new(&a), labels.iter().map(|l| Istr::new(l)).collect()))
            .collect();
        Self { detector, aliases }
    }

    fn populate(&self, slot: &mut FrameSlot, detections: &[vqpy_models::Detection]) {
        for det in detections {
            for (alias, labels) in &self.aliases {
                // The matching label doubles as the node's interned
                // class_label, so no per-detection interning is needed.
                if let Some(&label) = labels.iter().find(|l| **l == det.class_label) {
                    slot.graph
                        .add_node(VObjNode::from_detection_interned(*alias, label, det));
                }
            }
        }
    }
}

impl Operator for DetectOp {
    fn name(&self) -> String {
        let aliases: Vec<&str> = self.aliases.iter().map(|(a, _)| a.as_str()).collect();
        format!(
            "detect({} -> {})",
            self.detector.profile().name,
            aliases.join(","),
        )
    }

    fn process(&mut self, slot: &mut FrameSlot, ctx: &mut ExecCtx<'_>) -> Result<()> {
        let frames = [&slot.frame];
        let _span = ctx
            .tracer
            .span("dispatch", "dispatch:detect")
            .arg("model", &self.detector.profile().name)
            .arg("frame", slot.frame.index);
        let per_frame = ctx.dispatch.detect(&self.detector, &frames, ctx.clock)?;
        self.populate(slot, &per_frame[0]);
        Ok(())
    }

    fn process_batch(&mut self, slots: &mut [FrameSlot], ctx: &mut ExecCtx<'_>) -> Result<()> {
        let live: Vec<usize> = (0..slots.len()).filter(|&i| slots[i].alive).collect();
        if live.is_empty() {
            return Ok(());
        }
        let frames: Vec<&Frame> = live.iter().map(|&i| &slots[i].frame).collect();
        let _span = ctx
            .tracer
            .span("dispatch", "dispatch:detect")
            .arg("model", &self.detector.profile().name)
            .arg("frame", frames[0].index)
            .arg("items", frames.len());
        let per_frame = ctx.dispatch.detect(&self.detector, &frames, ctx.clock)?;
        for (&i, detections) in live.iter().zip(&per_frame) {
            self.populate(&mut slots[i], detections);
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Tracking
// ---------------------------------------------------------------------------

/// Object tracker operator for one alias: assigns stable track ids and
/// motion linkage, enabling stateful properties and intrinsic reuse.
pub struct TrackOp {
    alias: String,
    tracker: SortTracker,
    last_seen: HashMap<TrackId, u64>,
}

impl TrackOp {
    /// Creates a tracker for `alias`.
    pub fn new(alias: impl Into<String>) -> Self {
        Self {
            alias: alias.into(),
            tracker: SortTracker::new(TrackerParams::default()),
            last_seen: HashMap::new(),
        }
    }
}

impl Operator for TrackOp {
    fn name(&self) -> String {
        format!("track({})", self.alias)
    }

    fn process(&mut self, slot: &mut FrameSlot, ctx: &mut ExecCtx<'_>) -> Result<()> {
        // The Kalman tracker is native and cheap, but not free.
        ctx.clock.charge_labeled("tracker", 0.05);
        let ids = slot.graph.alive_of(&self.alias);
        let boxes: Vec<(vqpy_video::geometry::BBox, &str)> = ids
            .iter()
            .map(|&i| {
                let n = &slot.graph.nodes[i];
                (n.bbox, n.class_label.as_str())
            })
            .collect();
        let updates = self.tracker.update(&boxes);
        for (&node_id, up) in ids.iter().zip(&updates) {
            let node = &mut slot.graph.nodes[node_id];
            node.track_id = Some(up.track_id);
            node.track_confirmed = up.confirmed;
            node.track_is_new = up.is_new;
            node.prev_frame = self.last_seen.get(&up.track_id).copied();
            self.last_seen.insert(up.track_id, slot.frame.index);
        }
        Ok(())
    }

    fn state_key(&self) -> Option<String> {
        Some(format!("track({})", self.alias))
    }

    fn export_state(&mut self) -> Option<OpState> {
        Some(OpState::Track {
            tracker: std::mem::replace(
                &mut self.tracker,
                SortTracker::new(TrackerParams::default()),
            ),
            last_seen: std::mem::take(&mut self.last_seen),
        })
    }

    fn import_state(&mut self, state: OpState) {
        if let OpState::Track { tracker, last_seen } = state {
            self.tracker = tracker;
            self.last_seen = last_seen;
        }
    }
}

// ---------------------------------------------------------------------------
// Projection (property computation)
// ---------------------------------------------------------------------------

/// Projector operator: computes one property for all alive nodes of an
/// alias. Stateless model properties consult the intrinsic reuse cache
/// first; stateful properties maintain a per-track sliding window of their
/// dependencies (§4.1's "local sliding window of historical data").
///
/// An optional fused filter predicate is applied immediately after each
/// node's value is computed (operator fusion, §4.3).
pub struct ProjectOp {
    alias: String,
    def: PropertyDef,
    /// Interned `(alias, prop)` pair: the allocation-free reuse-cache key.
    alias_sym: Sym,
    prop_sym: Sym,
    classifier: Option<Arc<dyn Classifier>>,
    history: HashMap<TrackId, VecDeque<BTreeMap<String, Value>>>,
    fused_filter: Option<Pred>,
    fused_required: bool,
    /// Scratch for the batched model path, reused across frames.
    pending_ids: Vec<NodeId>,
    pending_dets: Vec<vqpy_models::Detection>,
}

impl ProjectOp {
    /// Creates a projector; model properties resolve their classifier from
    /// the zoo lazily on first use. `alias_sym`/`prop_sym` are the plan's
    /// interned symbols for the alias and the property name — they key the
    /// reuse cache without per-probe allocation.
    pub fn new(alias: impl Into<String>, def: PropertyDef, alias_sym: Sym, prop_sym: Sym) -> Self {
        Self {
            alias: alias.into(),
            def,
            alias_sym,
            prop_sym,
            classifier: None,
            history: HashMap::new(),
            fused_filter: None,
            fused_required: false,
            pending_ids: Vec::new(),
            pending_dets: Vec::new(),
        }
    }

    /// Fuses a filter to run on each node right after projection; when
    /// `required` is set, a frame whose alias has no surviving node dies.
    pub fn with_fused_filter(mut self, pred: Pred, required: bool) -> Self {
        self.fused_filter = Some(pred);
        self.fused_required = required;
        self
    }

    /// The property being projected.
    pub fn property(&self) -> &PropertyDef {
        &self.def
    }

    fn classifier(&mut self, ctx: &ExecCtx<'_>) -> Result<Arc<dyn Classifier>> {
        if self.classifier.is_none() {
            let name = match &self.def.source {
                PropertySource::Model(m) => m.clone(),
                other => {
                    return Err(VqpyError::InvalidQuery(format!(
                        "projector for non-model source {other:?} asked for classifier"
                    )))
                }
            };
            self.classifier = Some(ctx.zoo.classifier(&name)?);
        }
        Ok(Arc::clone(self.classifier.as_ref().expect("just set")))
    }

    fn compute_native(
        &self,
        node: &VObjNode,
        deps: &HashMap<String, Vec<Value>>,
        fps: u32,
    ) -> Value {
        match &self.def.source {
            PropertySource::Native(f) => f(&PropertyCtx { deps, fps }),
            PropertySource::Builtin(b) => node.builtin(*b),
            PropertySource::Model(_) => unreachable!("model handled separately"),
        }
    }
}

impl Operator for ProjectOp {
    fn name(&self) -> String {
        match &self.fused_filter {
            Some(p) => format!("project+filter({}.{} | {p})", self.alias, self.def.name),
            None => format!("project({}.{})", self.alias, self.def.name),
        }
    }

    fn process(&mut self, slot: &mut FrameSlot, ctx: &mut ExecCtx<'_>) -> Result<()> {
        let kind = self.def.kind;
        let is_model = matches!(self.def.source, PropertySource::Model(_));
        if let (PropertyKind::Stateless { intrinsic }, true) = (kind, is_model) {
            self.process_model_frame(slot, ctx, intrinsic)?;
        } else {
            self.process_native_frame(slot, ctx)?;
        }
        if self.fused_filter.is_some()
            && self.fused_required
            && slot.graph.alive_count(&self.alias) == 0
        {
            slot.alive = false;
        }
        Ok(())
    }

    /// The state key deliberately ignores fusion: whether a filter is fused
    /// onto this projection changes across recompiles of a shared plan, but
    /// the per-track history windows stay valid either way.
    fn state_key(&self) -> Option<String> {
        Some(format!("project({}.{})", self.alias, self.def.name))
    }

    fn export_state(&mut self) -> Option<OpState> {
        Some(OpState::Project {
            history: std::mem::take(&mut self.history),
        })
    }

    fn import_state(&mut self, state: OpState) {
        if let OpState::Project { history } = state {
            self.history = history;
        }
    }
}

impl ProjectOp {
    fn apply_value(&self, slot: &mut FrameSlot, id: NodeId, value: Value) {
        slot.graph.nodes[id]
            .props
            .insert(self.def.name.clone(), value);
        // Operator fusion: filter right here, saving a pipeline pass.
        if let Some(pred) = &self.fused_filter {
            let env = single_node_env(&slot.graph.nodes[id]);
            if !pred.eval(&env) {
                slot.graph.kill(id);
            }
        }
    }

    /// Stateless model property: reuse-cache fast path, then one batched
    /// model invocation over the frame's remaining crops (§4.1 batching +
    /// §4.2 reuse).
    fn process_model_frame(
        &mut self,
        slot: &mut FrameSlot,
        ctx: &mut ExecCtx<'_>,
        intrinsic: bool,
    ) -> Result<()> {
        let node_ids = slot.graph.alive_of(&self.alias);
        self.pending_ids.clear();
        self.pending_dets.clear();
        for id in node_ids {
            let node = &slot.graph.nodes[id];
            if node.props.contains_key(&self.def.name) {
                continue; // already computed (shared plans)
            }
            // Memoized values are trusted only once the track is
            // confirmed: a first sighting clamped at the frame edge would
            // otherwise pin a bad classification for the object's whole
            // lifetime.
            let cached = if intrinsic && ctx.enable_reuse && node.track_confirmed {
                node.track_id.and_then(|t| {
                    ctx.reuse.lookup_named(
                        self.alias_sym,
                        t,
                        self.prop_sym,
                        &self.alias,
                        &self.def.name,
                    )
                })
            } else {
                None
            };
            match cached {
                Some(v) => self.apply_value(slot, id, v),
                None => {
                    let det = slot.graph.nodes[id].as_detection();
                    self.pending_ids.push(id);
                    self.pending_dets.push(det);
                }
            }
        }
        if self.pending_ids.is_empty() {
            return Ok(());
        }
        let clf = self.classifier(ctx)?;
        let _span = ctx
            .tracer
            .span("dispatch", "dispatch:classify")
            .arg("model", &clf.profile().name)
            .arg("frame", slot.frame.index)
            .arg("items", self.pending_dets.len());
        let values = ctx
            .dispatch
            .classify(&clf, &slot.frame, &self.pending_dets, ctx.clock)?;
        for (&id, v) in self.pending_ids.iter().zip(values) {
            if intrinsic && ctx.enable_reuse {
                if let Some(t) = slot.graph.nodes[id].track_id {
                    ctx.reuse.store_named(
                        self.alias_sym,
                        t,
                        self.prop_sym,
                        v.clone(),
                        &self.alias,
                        &self.def.name,
                    );
                }
            }
            self.apply_value(slot, id, v);
        }
        Ok(())
    }

    /// Native/builtin and stateful properties: per-node computation.
    fn process_native_frame(&mut self, slot: &mut FrameSlot, ctx: &mut ExecCtx<'_>) -> Result<()> {
        let node_ids = slot.graph.alive_of(&self.alias);
        for id in node_ids {
            let value = {
                let node = &slot.graph.nodes[id];
                if node.props.contains_key(&self.def.name) {
                    continue; // already computed (shared plans)
                }
                match self.def.kind {
                    // Stateless native/builtin: compute from current values.
                    PropertyKind::Stateless { .. } => {
                        let mut deps: HashMap<String, Vec<Value>> = HashMap::new();
                        for d in &self.def.deps {
                            deps.insert(d.clone(), vec![node.value_of(d)]);
                        }
                        self.compute_native(node, &deps, ctx.fps)
                    }
                    // Stateful: per-track sliding window of dependencies.
                    PropertyKind::Stateful { history_len } => {
                        ctx.clock.charge_labeled("native_prop", 0.02);
                        let Some(track) = node.track_id else {
                            // Untracked objects cannot have stateful props.
                            slot.graph.nodes[id]
                                .props
                                .insert(self.def.name.clone(), Value::Null);
                            continue;
                        };
                        let window = self.history.entry(track).or_default();
                        let mut current = BTreeMap::new();
                        for d in &self.def.deps {
                            current.insert(d.clone(), node.value_of(d));
                        }
                        window.push_back(current);
                        while window.len() > history_len {
                            window.pop_front();
                        }
                        if window.len() < history_len {
                            Value::Null
                        } else {
                            let mut deps: HashMap<String, Vec<Value>> = HashMap::new();
                            for d in &self.def.deps {
                                deps.insert(
                                    d.clone(),
                                    window
                                        .iter()
                                        .map(|m| m.get(d).cloned().unwrap_or(Value::Null))
                                        .collect(),
                                );
                            }
                            self.compute_native(node, &deps, ctx.fps)
                        }
                    }
                }
            };
            self.apply_value(slot, id, value);
        }
        Ok(())
    }
}

fn single_node_env(node: &VObjNode) -> PredEnv {
    let mut env = PredEnv::default();
    env.objects
        .insert(node.alias.as_str().to_owned(), node.prop_map());
    env
}

// ---------------------------------------------------------------------------
// Object filters
// ---------------------------------------------------------------------------

/// VObj filter: kills nodes failing a single-alias predicate; optionally
/// kills the whole frame when the alias has no survivors (the alias is
/// *required* by every query in the plan).
pub struct FilterOp {
    alias: String,
    pred: Pred,
    required: bool,
}

impl FilterOp {
    /// Creates a filter on `alias`.
    pub fn new(alias: impl Into<String>, pred: Pred, required: bool) -> Self {
        Self {
            alias: alias.into(),
            pred,
            required,
        }
    }

    /// The filter predicate.
    pub fn pred(&self) -> &Pred {
        &self.pred
    }
}

impl Operator for FilterOp {
    fn name(&self) -> String {
        format!("filter({} | {})", self.alias, self.pred)
    }

    fn process(&mut self, slot: &mut FrameSlot, _ctx: &mut ExecCtx<'_>) -> Result<()> {
        for id in slot.graph.alive_of(&self.alias) {
            let env = single_node_env(&slot.graph.nodes[id]);
            if !self.pred.eval(&env) {
                slot.graph.kill(id);
            }
        }
        if self.required && slot.graph.alive_count(&self.alias) == 0 {
            slot.alive = false;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Relation projection
// ---------------------------------------------------------------------------

/// Relation projector: computes relation properties for pairs of alive
/// nodes, adding spatial edges. Native properties are computed per pair;
/// HOI model properties run the model once per frame over the union of
/// both aliases' detections.
pub struct RelationProjectOp {
    decl: RelationDecl,
    hoi: Option<Arc<dyn HoiModel>>,
}

impl RelationProjectOp {
    /// Creates the projector for a declared relation.
    pub fn new(decl: RelationDecl) -> Self {
        Self { decl, hoi: None }
    }
}

impl Operator for RelationProjectOp {
    fn name(&self) -> String {
        format!(
            "project_relation({}: {} x {})",
            self.decl.name, self.decl.left_alias, self.decl.right_alias
        )
    }

    fn process(&mut self, slot: &mut FrameSlot, ctx: &mut ExecCtx<'_>) -> Result<()> {
        let left = slot.graph.alive_of(&self.decl.left_alias);
        let right = slot.graph.alive_of(&self.decl.right_alias);
        if left.is_empty() || right.is_empty() {
            return Ok(());
        }
        let props: Vec<_> = self
            .decl
            .schema
            .all_properties()
            .into_iter()
            .cloned()
            .collect();

        // HOI properties: one model call per frame over both aliases.
        let mut hoi_results: HashMap<(NodeId, NodeId), Value> = HashMap::new();
        for p in &props {
            if let RelationSource::Hoi { model } = &p.source {
                if self.hoi.is_none() {
                    self.hoi = Some(ctx.zoo.hoi(model)?);
                }
                let hoi = self.hoi.as_ref().expect("just set");
                let all_ids: Vec<NodeId> = left.iter().chain(right.iter()).copied().collect();
                let dets: Vec<_> = all_ids
                    .iter()
                    .map(|&i| slot.graph.nodes[i].as_detection())
                    .collect();
                for triple in hoi.interactions(&slot.frame, &dets, ctx.clock) {
                    let s = all_ids[triple.subject_idx];
                    let o = all_ids[triple.object_idx];
                    hoi_results.insert((s, o), Value::Str(triple.kind));
                }
            }
        }

        for &l in &left {
            for &r in &right {
                ctx.clock.charge_labeled("relation_native", 0.01);
                let mut edge_props = BTreeMap::new();
                for p in &props {
                    let v = match &p.source {
                        RelationSource::Native(f) => {
                            let ln = &slot.graph.nodes[l];
                            let rn = &slot.graph.nodes[r];
                            f(&RelationCtx {
                                left_bbox: ln.bbox,
                                right_bbox: rn.bbox,
                                left_props: &ln.props,
                                right_props: &rn.props,
                                fps: ctx.fps,
                            })
                        }
                        RelationSource::Hoi { .. } => hoi_results
                            .get(&(l, r))
                            .or_else(|| hoi_results.get(&(r, l)))
                            .cloned()
                            .unwrap_or(Value::Null),
                    };
                    edge_props.insert(p.name.clone(), v);
                }
                slot.graph.add_edge(Edge {
                    kind: EdgeKind::Spatial,
                    relation: self.decl.name.clone(),
                    from: l,
                    to: r,
                    props: edge_props,
                });
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Join
// ---------------------------------------------------------------------------

/// Join operator: enumerates bindings of the query's aliases to alive
/// nodes, evaluates the (possibly rewritten) frame constraint with relation
/// edges in scope, and records satisfying combos under the query's join
/// index (avoiding a per-frame name allocation).
pub struct JoinOp {
    /// Index into the plan's join list; keys [`FrameSlot::matches`].
    index: usize,
    query_name: String,
    aliases: Vec<String>,
    relations: Vec<RelationDecl>,
    pred: Pred,
    /// When true (single-query plans), an unmatched frame kills the slot.
    kills_frame: bool,
}

impl JoinOp {
    /// Creates a join for one query; `index` is its position in the plan's
    /// join list.
    pub fn new(
        index: usize,
        query_name: impl Into<String>,
        aliases: Vec<String>,
        relations: Vec<RelationDecl>,
        pred: Pred,
        kills_frame: bool,
    ) -> Self {
        Self {
            index,
            query_name: query_name.into(),
            aliases,
            relations,
            pred,
            kills_frame,
        }
    }
}

impl Operator for JoinOp {
    fn name(&self) -> String {
        format!("join({} | {})", self.query_name, self.pred)
    }

    fn process(&mut self, slot: &mut FrameSlot, _ctx: &mut ExecCtx<'_>) -> Result<()> {
        let candidates: Vec<Vec<NodeId>> = self
            .aliases
            .iter()
            .map(|a| slot.graph.alive_of(a))
            .collect();
        let mut combos = Vec::new();
        if candidates.iter().all(|c| !c.is_empty()) {
            let mut indices = vec![0usize; candidates.len()];
            'outer: loop {
                let binding: BTreeMap<String, NodeId> = self
                    .aliases
                    .iter()
                    .enumerate()
                    .map(|(pos, a)| (a.clone(), candidates[pos][indices[pos]]))
                    .collect();
                let mut env = PredEnv::default();
                for (alias, &node) in &binding {
                    env.objects
                        .insert(alias.clone(), slot.graph.nodes[node].prop_map());
                }
                for rel in &self.relations {
                    if let (Some(&l), Some(&r)) =
                        (binding.get(&rel.left_alias), binding.get(&rel.right_alias))
                    {
                        if let Some(e) = slot.graph.edge_between(&rel.name, l, r) {
                            env.relations.insert(rel.name.clone(), e.props.clone());
                        }
                    }
                }
                if self.pred.eval(&env) {
                    combos.push(MatchCombo { bindings: binding });
                }
                // Advance the odometer.
                for pos in (0..indices.len()).rev() {
                    indices[pos] += 1;
                    if indices[pos] < candidates[pos].len() {
                        continue 'outer;
                    }
                    indices[pos] = 0;
                    if pos == 0 {
                        break 'outer;
                    }
                }
            }
        }
        let matched = !combos.is_empty();
        if slot.matches.len() <= self.index {
            // Hand-built slots (tests) may not have been prepared.
            slot.prepare_joins(self.index + 1);
        }
        slot.matches[self.index] = combos;
        if self.kills_frame && !matched {
            slot.alive = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::predicate::Pred;
    use vqpy_models::ModelZoo;
    use vqpy_video::presets;
    use vqpy_video::scene::Scene;
    use vqpy_video::source::{SyntheticVideo, VideoSource};

    fn ctx_parts() -> (Arc<ModelZoo>, Clock, ReuseCache) {
        (ModelZoo::standard(), Clock::new(), ReuseCache::new())
    }

    fn video() -> SyntheticVideo {
        SyntheticVideo::new(Scene::generate(presets::jackson(), 77, 20.0))
    }

    #[test]
    fn detect_op_populates_graph() {
        let (zoo, clock, mut reuse) = ctx_parts();
        let v = video();
        let mut ctx = ExecCtx {
            dispatch: crate::backend::dispatch::direct(),
            tracer: &vqpy_obs::Tracer::disabled(),
            zoo: &zoo,
            clock: &clock,
            fps: v.fps(),
            reuse: &mut reuse,
            enable_reuse: true,
        };
        let mut op = DetectOp::new(
            zoo.detector("yolox").unwrap(),
            vec![(
                "car".into(),
                vec!["car".into(), "bus".into(), "truck".into()],
            )],
        );
        let mut slot = FrameSlot::new(v.frame(100));
        op.process(&mut slot, &mut ctx).unwrap();
        // All nodes belong to the declared alias and match its labels.
        for n in &slot.graph.nodes {
            assert_eq!(n.alias, "car");
            assert!(["car", "bus", "truck"].contains(&n.class_label.as_str()));
        }
    }

    #[test]
    fn track_op_assigns_stable_ids() {
        let (zoo, clock, mut reuse) = ctx_parts();
        let v = video();
        let mut ctx = ExecCtx {
            dispatch: crate::backend::dispatch::direct(),
            tracer: &vqpy_obs::Tracer::disabled(),
            zoo: &zoo,
            clock: &clock,
            fps: v.fps(),
            reuse: &mut reuse,
            enable_reuse: true,
        };
        let det = zoo.detector("yolox").unwrap();
        let mut detect = DetectOp::new(det, vec![("car".into(), vec!["car".into()])]);
        let mut track = TrackOp::new("car");
        let mut ids_by_entity: HashMap<u64, Vec<TrackId>> = HashMap::new();
        for i in 100..130 {
            let mut slot = FrameSlot::new(v.frame(i));
            detect.process(&mut slot, &mut ctx).unwrap();
            track.process(&mut slot, &mut ctx).unwrap();
            for n in &slot.graph.nodes {
                if let (Some(e), Some(t)) = (n.sim_entity, n.track_id) {
                    ids_by_entity.entry(e).or_default().push(t);
                }
            }
        }
        // Each physical entity should map to (almost always) one track id.
        for (e, ids) in &ids_by_entity {
            if ids.len() < 5 {
                continue;
            }
            let distinct: std::collections::HashSet<_> = ids.iter().collect();
            assert!(
                distinct.len() <= 2,
                "entity {e} split across too many tracks: {distinct:?}"
            );
        }
    }

    #[test]
    fn projector_reuse_skips_model_calls() {
        let (zoo, clock, mut reuse) = ctx_parts();
        let v = video();
        let det = zoo.detector("yolox").unwrap();
        let mut detect = DetectOp::new(det, vec![("car".into(), vec!["car".into()])]);
        let mut track = TrackOp::new("car");
        let def = PropertyDef::stateless_model("color", "color_detect", true);
        let mut project = ProjectOp::new("car", def, Sym(0), Sym(1));
        for i in 0..60 {
            let mut slot = FrameSlot::new(v.frame(i));
            let mut ctx = ExecCtx {
                dispatch: crate::backend::dispatch::direct(),
                tracer: &vqpy_obs::Tracer::disabled(),
                zoo: &zoo,
                clock: &clock,
                fps: v.fps(),
                reuse: &mut reuse,
                enable_reuse: true,
            };
            detect.process(&mut slot, &mut ctx).unwrap();
            track.process(&mut slot, &mut ctx).unwrap();
            project.process(&mut slot, &mut ctx).unwrap();
        }
        let stats = reuse.stats();
        assert!(
            stats.hits > 0,
            "confirmed tracks should hit the cache: {stats:?}"
        );
        // Model invocations = unconfirmed sightings (which bypass the
        // cache) + confirmed misses; far fewer than one per node visit.
        let invocations = clock
            .stat("color_detect")
            .map(|s| s.invocations)
            .unwrap_or(0);
        assert!(invocations > 0);
        assert!(
            invocations >= stats.misses,
            "every confirmed miss costs a model call: {invocations} vs {stats:?}"
        );
        let visits = stats.hits + invocations;
        assert!(
            invocations * 2 < visits,
            "most visits should be cache hits: {invocations} of {visits}"
        );
    }

    #[test]
    fn filter_op_kills_nodes_and_frames() {
        let (zoo, clock, mut reuse) = ctx_parts();
        let v = video();
        let mut ctx = ExecCtx {
            dispatch: crate::backend::dispatch::direct(),
            tracer: &vqpy_obs::Tracer::disabled(),
            zoo: &zoo,
            clock: &clock,
            fps: v.fps(),
            reuse: &mut reuse,
            enable_reuse: true,
        };
        let det = zoo.detector("yolox").unwrap();
        let mut detect = DetectOp::new(det, vec![("car".into(), vec!["car".into()])]);
        let mut filter = FilterOp::new("car", Pred::gt("car", "score", 2.0), true); // impossible
        let mut slot = FrameSlot::new(v.frame(100));
        detect.process(&mut slot, &mut ctx).unwrap();
        let before = slot.graph.alive_count("car");
        filter.process(&mut slot, &mut ctx).unwrap();
        assert_eq!(slot.graph.alive_count("car"), 0);
        assert!(!slot.alive, "required alias emptied -> frame dead");
        assert!(before > 0 || !slot.alive);
    }

    #[test]
    fn join_records_matches() {
        let (zoo, clock, mut reuse) = ctx_parts();
        let v = video();
        let mut ctx = ExecCtx {
            dispatch: crate::backend::dispatch::direct(),
            tracer: &vqpy_obs::Tracer::disabled(),
            zoo: &zoo,
            clock: &clock,
            fps: v.fps(),
            reuse: &mut reuse,
            enable_reuse: true,
        };
        let det = zoo.detector("yolox").unwrap();
        let mut detect = DetectOp::new(det, vec![("car".into(), vec!["car".into()])]);
        let mut join = JoinOp::new(
            0,
            "Q",
            vec!["car".into()],
            vec![],
            Pred::gt("car", "score", 0.0),
            true,
        );
        let mut slot = FrameSlot::new(v.frame(100));
        detect.process(&mut slot, &mut ctx).unwrap();
        let n = slot.graph.alive_count("car");
        join.process(&mut slot, &mut ctx).unwrap();
        assert_eq!(slot.matches[0].len(), n);
        assert_eq!(slot.alive, n > 0);
    }

    #[test]
    fn diff_filter_drops_static_frames() {
        let (zoo, clock, mut reuse) = ctx_parts();
        // Empty scene: every frame equals the first.
        let scene = vqpy_video::SceneBuilder::new(presets::banff(), 5.0).build();
        let v = SyntheticVideo::new(scene);
        let mut ctx = ExecCtx {
            dispatch: crate::backend::dispatch::direct(),
            tracer: &vqpy_obs::Tracer::disabled(),
            zoo: &zoo,
            clock: &clock,
            fps: v.fps(),
            reuse: &mut reuse,
            enable_reuse: true,
        };
        let mut op = DiffFrameFilter::new(0.5);
        let mut kept = 0;
        for i in 0..30 {
            let mut slot = FrameSlot::new(v.frame(i));
            op.process(&mut slot, &mut ctx).unwrap();
            if slot.alive {
                kept += 1;
            }
        }
        assert_eq!(kept, 1, "only the first static frame should survive");
    }
}
