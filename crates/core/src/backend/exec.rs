//! The execution engine: instantiates a [`PlanDag`] into live operators and
//! streams frames through them in batches, collecting per-query frame hits
//! and video aggregates.
//!
//! Two drivers share the same operators and collection logic:
//!
//! - **Sequential** ([`ExecMode::Sequential`]): one thread processes the
//!   video in batches of [`ExecConfig::batch_size`] frames, *op-major* —
//!   each operator's [`Operator::process_batch`] runs over the whole batch
//!   before the next operator starts, so model-backed operators issue one
//!   physical batched invocation per batch (§4.1).
//! - **Pipelined** ([`ExecMode::Pipelined`]): the staged executor in
//!   [`crate::backend::pipeline`] overlaps decode+frame-filters, detection,
//!   and the stateful tail (track/project/filter/join) on dedicated threads
//!   connected by bounded channels. Decode and detection additionally fan
//!   out across worker threads; the tail stays sequential in frame order
//!   because trackers, sliding windows, and the reuse cache are stateful.
//!
//! Both modes produce byte-identical query results: every simulated model
//! answers deterministically per `(frame, entity)`, stateful operators see
//! frames in order in both drivers, and batching only changes *charged
//! cost* (amortized dispatch overhead), never values.
//!
//! Frame slots are workspaces ([`FrameSlot::reset`]) and the reuse cache is
//! keyed by interned symbols, so the steady-state hot loop performs no
//! per-frame allocations for caching or match bookkeeping.

use crate::backend::dispatch::{DirectDispatch, ModelDispatch};
use crate::backend::ops::{
    BinaryFilterOp, DetectOp, DiffFrameFilter, ExecCtx, FilterOp, FrameSlot, JoinOp, OpState,
    Operator, ProjectOp, RelationProjectOp, TrackOp,
};
use crate::backend::plan::{JoinSpec, OpSpec, PlanDag};
use crate::backend::reuse::{ReuseCache, ReuseStats};
use crate::backend::symbols::SymbolTable;
use crate::error::{Result, VqpyError};
use crate::frontend::query::Aggregate;
use crate::frontend::vobj::ResolvedProperty;
use std::collections::{BTreeSet, HashMap};
use std::ops::Range;
use std::sync::Arc;
use std::time::Instant;
use vqpy_models::{Clock, ModelZoo, Value};
use vqpy_video::source::VideoSource;

/// How the operator chain is driven over the video.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Single-threaded, batch-at-a-time (the default).
    #[default]
    Sequential,
    /// Staged pipeline: decode+frame-filters → detect → tail, on dedicated
    /// threads with bounded channels. `workers` threads each fan out the
    /// decode and detect stages (clamped to at least 1).
    Pipelined {
        /// Worker threads per parallel stage.
        workers: usize,
    },
}

impl ExecMode {
    /// Worker threads per parallel stage this mode asks for (1 for
    /// sequential driving).
    pub fn workers(&self) -> usize {
        match self {
            ExecMode::Sequential => 1,
            ExecMode::Pipelined { workers } => (*workers).max(1),
        }
    }
}

/// Execution configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Frames per execution batch (the user-defined batch size of §4.1).
    /// Model-backed operators amortize per-invocation overhead across the
    /// batch; results are identical for every batch size.
    pub batch_size: usize,
    /// Sequential or pipelined driving (see [`ExecMode`]).
    pub exec_mode: ExecMode,
    /// Object-level computation reuse (§4.2) toggle.
    pub enable_intrinsic_reuse: bool,
    /// Optional reuse-cache entry bound; least-recently-used track
    /// properties are evicted past it (long videos, bounded memory).
    pub reuse_capacity: Option<usize>,
    /// Record per-frame virtual cost (Figure 13(b) series). Cost is
    /// attributed evenly within each batch (execution itself is unchanged);
    /// ignored (left empty) in pipelined mode.
    pub record_per_frame_ms: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            batch_size: 8,
            exec_mode: ExecMode::Sequential,
            enable_intrinsic_reuse: true,
            reuse_capacity: None,
            record_per_frame_ms: false,
        }
    }
}

impl ExecConfig {
    /// The reuse cache this configuration asks for.
    pub fn make_reuse(&self) -> ReuseCache {
        match self.reuse_capacity {
            Some(cap) => ReuseCache::with_capacity(cap),
            None => ReuseCache::new(),
        }
    }
}

/// Execution counters.
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    pub frames_total: u64,
    /// Frames surviving the frame filters (i.e. reaching detectors).
    pub frames_processed: u64,
    /// Frames whose decode failed ([`vqpy_video::DecodeFault`]) and were
    /// skipped instead of aborting the segment. Not counted in
    /// `frames_total`: a skipped frame never enters the super-plan.
    pub decode_failures: u64,
    pub reuse: ReuseStats,
    /// Virtual ms spent on each frame (only when
    /// [`ExecConfig::record_per_frame_ms`] is set; sequential mode only).
    pub per_frame_ms: Vec<f64>,
    /// Wall-clock milliseconds per pipeline stage, plus a `"total"` entry.
    /// Parallel stages report the *sum* of their workers' busy time.
    pub stage_wall_ms: Vec<(String, f64)>,
}

impl ExecMetrics {
    /// Adds wall time to a named stage bucket, creating it on first use
    /// (segment runs accumulate into the same buckets).
    pub fn add_stage_wall(&mut self, name: &str, ms: f64) {
        match self.stage_wall_ms.iter_mut().find(|(n, _)| n == name) {
            Some((_, total)) => *total += ms,
            None => self.stage_wall_ms.push((name.to_owned(), ms)),
        }
    }

    /// Accumulates another run's counters into this one (a serving layer
    /// merges metrics of retired engines with the live engine's).
    pub fn absorb(&mut self, other: &ExecMetrics) {
        self.frames_total += other.frames_total;
        self.frames_processed += other.frames_processed;
        self.decode_failures += other.decode_failures;
        self.reuse.hits += other.reuse.hits;
        self.reuse.misses += other.reuse.misses;
        self.reuse.evictions += other.reuse.evictions;
        self.reuse.tier_hits += other.reuse.tier_hits;
        self.per_frame_ms.extend_from_slice(&other.per_frame_ms);
        for (name, ms) in &other.stage_wall_ms {
            self.add_stage_wall(name, *ms);
        }
    }

    /// One-line summary of the counters that matter for perf triage:
    /// frame counts, reuse-cache hit rate, and per-stage wall times. Bench
    /// reports embed this string so `BENCH_*.json` files record the cache
    /// and stage behavior behind each throughput number.
    pub fn summary(&self) -> String {
        let mut s = format!(
            "frames {}/{} processed | reuse {:.1}% ({} hits, {} misses, {} evictions)",
            self.frames_processed,
            self.frames_total,
            self.reuse.hit_rate() * 100.0,
            self.reuse.hits,
            self.reuse.misses,
            self.reuse.evictions,
        );
        if self.decode_failures > 0 {
            s.push_str(&format!(
                " | {} decode failures skipped",
                self.decode_failures
            ));
        }
        if !self.stage_wall_ms.is_empty() {
            let stages: Vec<String> = self
                .stage_wall_ms
                .iter()
                .map(|(n, ms)| format!("{n} {ms:.1}ms"))
                .collect();
            s.push_str(&format!(" | stages: {}", stages.join(", ")));
        }
        s
    }
}

/// A frame satisfying a query, with its projected outputs.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameHit {
    pub frame: u64,
    pub time_s: f64,
    /// One output row per matching combo: `(alias.prop, value)` pairs.
    pub outputs: Vec<Vec<(String, Value)>>,
}

/// The result of one query's execution.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub query_name: String,
    pub frame_hits: Vec<FrameHit>,
    /// Video-level aggregate (Figure 7), if the query declared one.
    pub video_value: Option<Value>,
    pub metrics: ExecMetrics,
    /// Virtual milliseconds charged during execution.
    pub virtual_ms: f64,
}

impl QueryResult {
    /// Sorted hit frame indices.
    pub fn hit_frames(&self) -> Vec<u64> {
        self.frame_hits.iter().map(|h| h.frame).collect()
    }

    /// Hit frames as a set, for scoring.
    pub fn hit_frame_set(&self) -> BTreeSet<u64> {
        self.frame_hits.iter().map(|h| h.frame).collect()
    }
}

/// Instantiates a slice of operator specs against a clone of the plan's
/// symbol table. The serving layer uses [`instantiate_ops_with`] instead,
/// passing one append-only table that stays stable across recompiles.
pub fn instantiate_ops(
    plan: &PlanDag,
    specs: &[OpSpec],
    zoo: &ModelZoo,
) -> Result<Vec<Box<dyn Operator>>> {
    // The plan interned every name it emits; clone-and-intern keeps
    // hand-constructed plans (tests) working too.
    let mut syms = plan.symbols.clone();
    instantiate_ops_with(plan, specs, zoo, &mut syms)
}

/// Instantiates operator specs, interning names into `syms`. Reuse-cache
/// keys are derived from these symbols, so a long-lived stream must pass
/// the *same* table for every (re)instantiation or cached values would be
/// read back under the wrong `(alias, prop)` identity.
pub fn instantiate_ops_with(
    plan: &PlanDag,
    specs: &[OpSpec],
    zoo: &ModelZoo,
    syms: &mut SymbolTable,
) -> Result<Vec<Box<dyn Operator>>> {
    let mut ops: Vec<Box<dyn Operator>> = Vec::with_capacity(specs.len());
    for spec in specs {
        let op: Box<dyn Operator> = match spec {
            OpSpec::DiffFilter { threshold } => Box::new(DiffFrameFilter::new(*threshold)),
            OpSpec::BinaryFilter { model } => {
                Box::new(BinaryFilterOp::new(zoo.frame_classifier(model)?))
            }
            OpSpec::Detect { detector, aliases } => {
                Box::new(DetectOp::new(zoo.detector(detector)?, aliases.clone()))
            }
            OpSpec::Track { alias } => Box::new(TrackOp::new(alias.clone())),
            OpSpec::Project { alias, prop } => {
                let (a, p) = (syms.intern(alias), syms.intern(prop));
                Box::new(ProjectOp::new(
                    alias.clone(),
                    resolve_def(plan, alias, prop)?,
                    a,
                    p,
                ))
            }
            OpSpec::FusedProjectFilter {
                alias,
                prop,
                pred,
                required,
            } => {
                let (a, p) = (syms.intern(alias), syms.intern(prop));
                Box::new(
                    ProjectOp::new(alias.clone(), resolve_def(plan, alias, prop)?, a, p)
                        .with_fused_filter(pred.clone(), *required),
                )
            }
            OpSpec::Filter {
                alias,
                pred,
                required,
            } => Box::new(FilterOp::new(alias.clone(), pred.clone(), *required)),
            OpSpec::ProjectRelation { index } => {
                Box::new(RelationProjectOp::new(plan.relations[*index].clone()))
            }
            OpSpec::Join { index } => {
                let j = &plan.joins[*index];
                let aliases: Vec<String> =
                    j.query.vobjs().iter().map(|v| v.alias.clone()).collect();
                Box::new(JoinOp::new(
                    *index,
                    j.query.name().to_owned(),
                    aliases,
                    j.query.relations().to_vec(),
                    j.pred.clone(),
                    j.kills_frame,
                ))
            }
        };
        ops.push(op);
    }
    Ok(ops)
}

fn resolve_def(
    plan: &PlanDag,
    alias: &str,
    prop: &str,
) -> Result<crate::frontend::property::PropertyDef> {
    let schema = plan
        .schemas
        .get(alias)
        .ok_or_else(|| VqpyError::UnknownAlias(alias.to_owned()))?;
    match schema.resolve_property(prop) {
        Some(ResolvedProperty::Defined(def)) => Ok(def.clone()),
        _ => Err(VqpyError::UnknownProperty {
            schema: schema.name().to_owned(),
            property: prop.to_owned(),
        }),
    }
}

/// Consumes finished frame slots in frame order: the tail of every
/// execution driver. The offline path accumulates a [`QueryResult`] per
/// query ([`Collector`]); the serving layer demultiplexes matches to
/// per-query subscribers incrementally.
pub trait ResultSink {
    /// Observes one finished slot. Called in frame order.
    fn on_frame(&mut self, plan: &PlanDag, slot: &FrameSlot) -> Result<()>;
}

/// Per-query streaming accumulator: video-aggregate bookkeeping plus
/// extraction of a frame's hit row. Uses O(1) state per query (no
/// per-frame history), so it can run over unbounded live streams.
#[derive(Debug, Default)]
pub struct QueryAccum {
    /// The alias whose nodes feed the video aggregate, if any.
    agg_alias: Option<String>,
    distinct_tracks: BTreeSet<i64>,
    frames_seen: u64,
    frames_hit: u64,
    count_sum: u64,
    count_max: u64,
}

impl QueryAccum {
    /// An accumulator for one join of a plan.
    pub fn new(join: &JoinSpec) -> Self {
        Self::for_query(&join.query)
    }

    /// An accumulator for a query (the serving layer builds accumulators
    /// before the super-plan containing the query exists).
    pub fn for_query(query: &crate::frontend::query::Query) -> Self {
        let agg_alias = match query.video_output() {
            Some(Aggregate::CountDistinctTracks { alias })
            | Some(Aggregate::AvgPerFrame { alias })
            | Some(Aggregate::MaxPerFrame { alias }) => Some(alias.clone()),
            _ => None,
        };
        Self {
            agg_alias,
            ..Self::default()
        }
    }

    /// Observes join `ji`'s matches on a finished slot (must be called in
    /// frame order), returning the frame's hit row when any combo matched.
    pub fn observe(&mut self, join: &JoinSpec, slot: &FrameSlot, ji: usize) -> Option<FrameHit> {
        static EMPTY: Vec<crate::backend::ops::MatchCombo> = Vec::new();
        let combos = slot.matches.get(ji).unwrap_or(&EMPTY);
        self.frames_seen += 1;
        // Aggregation bookkeeping (count per frame even when zero).
        let frame_count = if let Some(alias) = &self.agg_alias {
            let mut frame_nodes = BTreeSet::new();
            for c in combos {
                if let Some(&node) = c.bindings.get(alias) {
                    frame_nodes.insert(node);
                    if let Value::Int(t) = slot.graph.nodes[node].value_of("track_id") {
                        self.distinct_tracks.insert(t);
                    }
                }
            }
            frame_nodes.len() as u64
        } else {
            u64::from(!combos.is_empty())
        };
        self.count_sum += frame_count;
        self.count_max = self.count_max.max(frame_count);
        if combos.is_empty() {
            return None;
        }
        self.frames_hit += 1;
        let outputs: Vec<Vec<(String, Value)>> = combos
            .iter()
            .map(|c| {
                join.query
                    .frame_output()
                    .iter()
                    .filter_map(|p| {
                        c.bindings.get(&p.alias).map(|&node| {
                            (
                                format!("{}.{}", p.alias, p.prop),
                                slot.graph.nodes[node].value_of(&p.prop),
                            )
                        })
                    })
                    .collect()
            })
            .collect();
        Some(FrameHit {
            frame: slot.frame.index,
            time_s: slot.frame.time_s,
            outputs,
        })
    }

    /// The query's video-level aggregate over the frames observed so far.
    pub fn video_value(&self, join: &JoinSpec) -> Option<Value> {
        self.video_value_for(&join.query)
    }

    /// Same as [`QueryAccum::video_value`], from the query alone (the
    /// accumulator is per-query state; the join spec adds nothing).
    pub fn video_value_for(&self, query: &crate::frontend::query::Query) -> Option<Value> {
        query.video_output().map(|a| match a {
            Aggregate::CountDistinctTracks { .. } => Value::Int(self.distinct_tracks.len() as i64),
            Aggregate::AvgPerFrame { .. } => {
                Value::Float(self.count_sum as f64 / self.frames_seen.max(1) as f64)
            }
            Aggregate::MaxPerFrame { .. } => Value::Int(self.count_max as i64),
            Aggregate::CountFrames => Value::Int(self.frames_hit as i64),
        })
    }
}

/// Accumulates per-join hits and aggregates as finished slots stream out of
/// a driver (always in frame order): the batch/offline [`ResultSink`].
pub struct Collector {
    hits: Vec<Vec<FrameHit>>,
    accums: Vec<QueryAccum>,
}

impl Collector {
    /// An empty collector for a plan's query set.
    pub fn new(plan: &PlanDag) -> Self {
        Self {
            hits: plan.joins.iter().map(|_| Vec::new()).collect(),
            accums: plan.joins.iter().map(QueryAccum::new).collect(),
        }
    }

    /// Records one finished slot's matches. Must be called in frame order.
    pub fn collect(&mut self, plan: &PlanDag, slot: &FrameSlot) {
        for (ji, j) in plan.joins.iter().enumerate() {
            if let Some(hit) = self.accums[ji].observe(j, slot, ji) {
                self.hits[ji].push(hit);
            }
        }
    }

    /// Builds the per-query results.
    pub fn finalize(self, plan: &PlanDag, metrics: ExecMetrics, total_ms: f64) -> Vec<QueryResult> {
        let mut results = Vec::with_capacity(plan.joins.len());
        for ((j, accum), hits) in plan.joins.iter().zip(&self.accums).zip(self.hits) {
            results.push(QueryResult {
                query_name: j.query.name().to_owned(),
                frame_hits: hits,
                video_value: accum.video_value(j),
                metrics: metrics.clone(),
                virtual_ms: total_ms,
            });
        }
        results
    }
}

impl ResultSink for Collector {
    fn on_frame(&mut self, plan: &PlanDag, slot: &FrameSlot) -> Result<()> {
        self.collect(plan, slot);
        Ok(())
    }
}

/// The operator-chain split every driver uses: frame filters (stateful,
/// frame order) → detectors (stateless, parallelizable) → tail (stateful
/// relational work). `(frame_specs, detect_specs, tail_specs)`.
pub fn split_stage_specs(plan: &PlanDag) -> (&[OpSpec], &[OpSpec], &[OpSpec]) {
    let first_detect = plan
        .ops
        .iter()
        .position(|o| matches!(o, OpSpec::Detect { .. }));
    match first_detect {
        Some(first_detect) => {
            let after_detect = plan.ops[first_detect..]
                .iter()
                .position(|o| !matches!(o, OpSpec::Detect { .. }))
                .map(|p| first_detect + p)
                .unwrap_or(plan.ops.len());
            (
                &plan.ops[..first_detect],
                &plan.ops[first_detect..after_detect],
                &plan.ops[after_detect..],
            )
        }
        None => (&plan.ops[..0], &plan.ops[..0], &plan.ops[..]),
    }
}

/// Live operator chains, split at stage boundaries. `detects` holds one
/// chain per pipeline worker (detectors are stateless, so each worker owns
/// instances); sequential driving uses worker 0 only.
///
/// A `StageOps` owns all cross-frame operator state for a stream, so a
/// serving layer can persist it across [`run_segment`] calls — and, via
/// [`StageOps::export_states`] / [`StageOps::import_states`], across plan
/// recompiles when queries attach or detach.
pub struct StageOps {
    pub filters: Vec<Box<dyn Operator>>,
    pub detects: Vec<Vec<Box<dyn Operator>>>,
    /// Ordered pre-enrich segment of the tail: the tracker plus every
    /// stateful or reuse-cache-touching projection, in plan order (see
    /// [`PlanDag::partition_tail`]). Runs in frame order in both drivers.
    pub prep: Vec<Box<dyn Operator>>,
    /// Hoisted enrich chains, one per pipeline worker: order-free,
    /// cache-free per-object projections and filters the planner lifted
    /// out of the tail. Each worker owns its chain as a reusable workspace
    /// (operators here are stateless, so chains never need state
    /// carry-over but are still consulted by
    /// [`StageOps::import_states`] for forward compatibility). Sequential
    /// driving uses chain 0 only.
    pub enrichs: Vec<Vec<Box<dyn Operator>>>,
    /// The thin, genuinely order-dependent tail: relation projections and
    /// joins.
    pub tail: Vec<Box<dyn Operator>>,
    /// The model-dispatch boundary every driver routes detect-,
    /// binary-filter-, and classify-stage model invocations through (see
    /// [`crate::backend::dispatch`]). Defaults to [`DirectDispatch`]; a
    /// serving supervisor replaces it with a shared cross-stream batcher.
    /// Owned here — rather than passed per segment — so the boundary
    /// survives exactly as long as the stream's operator state does.
    pub dispatch: Arc<dyn ModelDispatch>,
    /// Span tracer both drivers open stage spans on (decode,
    /// frame-filter, detect, tail) and hand to operators via
    /// [`ExecCtx`] for dispatch-level
    /// spans. Defaults to a disabled tracer — one atomic load per
    /// would-be span — and is owned here for the same reason `dispatch`
    /// is: the serving layer installs an enabled, per-stream handle once
    /// and it survives plan recompiles.
    pub tracer: vqpy_obs::Tracer,
    /// Frame-slot workspace the sequential driver fills per batch. Owned
    /// here so re-entrant segment stepping — a shard worker running one
    /// short segment per scheduler turn — reuses the allocations across
    /// calls instead of rebuilding slot buffers every step. Purely a
    /// workspace: its contents between calls carry no semantic state.
    pub slots: Vec<FrameSlot>,
}

impl StageOps {
    /// Extracts every stateful operator's cross-frame state, keyed by
    /// [`Operator::state_key`]. Detect workers beyond the first hold no
    /// state (detection is stateless), so only worker 0 is consulted.
    pub fn export_states(&mut self) -> HashMap<String, OpState> {
        let mut out = HashMap::new();
        let chains = self
            .filters
            .iter_mut()
            .chain(self.detects.first_mut().into_iter().flatten())
            .chain(self.prep.iter_mut())
            .chain(self.enrichs.first_mut().into_iter().flatten())
            .chain(self.tail.iter_mut());
        for op in chains {
            if let (Some(key), Some(state)) = (op.state_key(), op.export_state()) {
                out.insert(key, state);
            }
        }
        out
    }

    /// Installs previously exported state into operators with matching
    /// state keys; unmatched entries are dropped (their operator left the
    /// plan) and unmatched operators start fresh (they just joined).
    pub fn import_states(&mut self, states: &mut HashMap<String, OpState>) {
        let chains = self
            .filters
            .iter_mut()
            .chain(self.detects.iter_mut().flatten())
            .chain(self.prep.iter_mut())
            .chain(self.enrichs.iter_mut().flatten())
            .chain(self.tail.iter_mut());
        for op in chains {
            if let Some(key) = op.state_key() {
                if let Some(state) = states.remove(&key) {
                    op.import_state(state);
                }
            }
        }
    }
}

/// Instantiates a plan's operators split by stage, with `workers` detect
/// chains, interning execution symbols into `symbols` (see
/// [`instantiate_ops_with`] for why the table must outlive recompiles).
pub fn instantiate_stage_ops(
    plan: &PlanDag,
    zoo: &ModelZoo,
    workers: usize,
    symbols: &mut SymbolTable,
) -> Result<StageOps> {
    let workers = workers.max(1);
    let (frame_specs, detect_specs, tail_all) = split_stage_specs(plan);
    let (prep_specs, enrich_specs, tail_specs) = plan.partition_tail(tail_all);
    Ok(StageOps {
        filters: instantiate_ops_with(plan, frame_specs, zoo, symbols)?,
        detects: (0..workers)
            .map(|_| instantiate_ops_with(plan, detect_specs, zoo, symbols))
            .collect::<Result<_>>()?,
        prep: instantiate_ops_with(plan, prep_specs, zoo, symbols)?,
        enrichs: (0..workers)
            .map(|_| instantiate_ops_with(plan, enrich_specs, zoo, symbols))
            .collect::<Result<_>>()?,
        tail: instantiate_ops_with(plan, tail_specs, zoo, symbols)?,
        dispatch: Arc::new(DirectDispatch),
        tracer: vqpy_obs::Tracer::disabled(),
        slots: Vec::new(),
    })
}

/// Executes a plan over a video, producing one result per query in the
/// plan, in plan order. Dispatches on [`ExecConfig::exec_mode`]; both modes
/// produce identical results.
///
/// # Errors
///
/// Fails when plan operators reference unknown models or properties.
pub fn execute_plan(
    plan: &PlanDag,
    source: &dyn VideoSource,
    zoo: &ModelZoo,
    clock: &Clock,
    config: &ExecConfig,
) -> Result<Vec<QueryResult>> {
    let workers = config.exec_mode.workers();
    let mut symbols = plan.symbols.clone();
    let mut ops = instantiate_stage_ops(plan, zoo, workers, &mut symbols)?;
    let mut reuse = config.make_reuse();
    let mut metrics = ExecMetrics::default();
    let mut collector = Collector::new(plan);
    let start_ms = clock.virtual_ms();
    let wall_start = Instant::now();
    run_segment(
        plan,
        source,
        zoo,
        clock,
        config,
        0..source.frame_count(),
        &mut ops,
        &mut reuse,
        &mut metrics,
        &mut collector,
    )?;
    metrics.reuse = reuse.stats();
    metrics
        .stage_wall_ms
        .push(("total".into(), wall_start.elapsed().as_secs_f64() * 1e3));
    let total_ms = clock.virtual_ms() - start_ms;
    Ok(collector.finalize(plan, metrics, total_ms))
}

/// Streams the contiguous frame `range` of `source` through `ops`,
/// delivering every finished slot to `sink` in frame order. All cross-call
/// state lives in `ops`/`reuse`/`metrics`, so callers may interleave
/// segments with plan recompiles (the serving layer's attach/detach) or run
/// one whole-video segment (the offline path). `metrics.reuse` is *not*
/// refreshed here — callers snapshot `reuse.stats()` when they finish.
#[allow(clippy::too_many_arguments)]
pub fn run_segment(
    plan: &PlanDag,
    source: &dyn VideoSource,
    zoo: &ModelZoo,
    clock: &Clock,
    config: &ExecConfig,
    range: Range<u64>,
    ops: &mut StageOps,
    reuse: &mut ReuseCache,
    metrics: &mut ExecMetrics,
    sink: &mut dyn ResultSink,
) -> Result<()> {
    if range.is_empty() {
        return Ok(());
    }
    match config.exec_mode {
        ExecMode::Sequential => run_segment_sequential(
            plan, source, zoo, clock, config, range, ops, reuse, metrics, sink,
        ),
        ExecMode::Pipelined { .. } => crate::backend::pipeline::run_segment_pipelined(
            plan, source, zoo, clock, config, range, ops, reuse, metrics, sink,
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn run_segment_sequential(
    plan: &PlanDag,
    source: &dyn VideoSource,
    zoo: &ModelZoo,
    clock: &Clock,
    config: &ExecConfig,
    range: Range<u64>,
    ops: &mut StageOps,
    reuse: &mut ReuseCache,
    metrics: &mut ExecMetrics,
    sink: &mut dyn ResultSink,
) -> Result<()> {
    // The slot workspace lives in `ops` so it survives across segment
    // calls; detach it for the duration of the run (the stage loops need
    // `ops`'s operator chains mutably) and put it back even on error.
    let mut slots = std::mem::take(&mut ops.slots);
    let result = run_sequential_batches(
        plan, source, zoo, clock, config, range, ops, reuse, metrics, sink, &mut slots,
    );
    ops.slots = slots;
    result
}

#[allow(clippy::too_many_arguments)]
fn run_sequential_batches(
    plan: &PlanDag,
    source: &dyn VideoSource,
    zoo: &ModelZoo,
    clock: &Clock,
    config: &ExecConfig,
    range: Range<u64>,
    ops: &mut StageOps,
    reuse: &mut ReuseCache,
    metrics: &mut ExecMetrics,
    sink: &mut dyn ResultSink,
    slots: &mut Vec<FrameSlot>,
) -> Result<()> {
    let batch = config.batch_size.max(1) as u64;
    let dispatch = Arc::clone(&ops.dispatch);
    let tracer = ops.tracer.clone();
    let mut index = range.start;
    while index < range.end {
        let end = (index + batch).min(range.end);
        let batch_start_ms = clock.virtual_ms();
        // Fill slots with the decodable frames of the batch, in order. An
        // undecodable frame is skipped with a counter — decode faults are
        // per-frame events, not stream-fatal — so `n` is the number of
        // *surviving* frames in this batch.
        let mut n = 0usize;
        {
            let mut span = tracer
                .span("exec", "decode")
                .arg("start", index)
                .arg("end", end);
            for f in index..end {
                clock.charge_labeled("video_decode", vqpy_models::zoo::COST_VIDEO_DECODE);
                let frame = match source.try_frame(f) {
                    Ok(frame) => frame,
                    Err(_) => {
                        metrics.decode_failures += 1;
                        continue;
                    }
                };
                if n < slots.len() {
                    slots[n].reset(frame);
                } else {
                    slots.push(FrameSlot::new(frame));
                }
                slots[n].prepare_joins(plan.joins.len());
                metrics.frames_total += 1;
                n += 1;
            }
            span.add_arg("decoded", n);
        }
        if n == 0 {
            index = end;
            continue;
        }
        {
            let mut ctx = ExecCtx {
                dispatch: &*dispatch,
                tracer: &tracer,
                zoo,
                clock,
                fps: source.fps(),
                reuse,
                enable_reuse: config.enable_intrinsic_reuse,
            };
            {
                let _span = tracer
                    .span("exec", "frame_filter")
                    .arg("start", index)
                    .arg("frames", n);
                for op in ops.filters.iter_mut() {
                    op.process_batch(&mut slots[..n], &mut ctx)?;
                }
            }
            // Frames alive past the frame filters count as processed.
            metrics.frames_processed += slots[..n].iter().filter(|s| s.alive).count() as u64;
            {
                let _span = tracer
                    .span("exec", "detect")
                    .arg("start", index)
                    .arg("frames", n);
                for op in ops.detects[0].iter_mut() {
                    op.process_batch(&mut slots[..n], &mut ctx)?;
                }
            }
            {
                let _span = tracer
                    .span("exec", "track")
                    .arg("start", index)
                    .arg("frames", n);
                for op in ops.prep.iter_mut() {
                    op.process_batch(&mut slots[..n], &mut ctx)?;
                }
            }
            {
                let _span = tracer
                    .span("exec", "enrich")
                    .arg("start", index)
                    .arg("frames", n);
                for op in ops.enrichs[0].iter_mut() {
                    op.process_batch(&mut slots[..n], &mut ctx)?;
                }
            }
            {
                let _span = tracer
                    .span("exec", "tail")
                    .arg("start", index)
                    .arg("frames", n);
                for op in ops.tail.iter_mut() {
                    op.process_batch(&mut slots[..n], &mut ctx)?;
                }
            }
        }
        for slot in &slots[..n] {
            sink.on_frame(plan, slot)?;
        }
        if config.record_per_frame_ms {
            // Op-major batching interleaves charges across the batch's
            // frames, so attribute the batch's cost evenly: instrumentation
            // must not change what is being measured (batch amortization
            // stays on), and quarter-averaged series (Figure 13(b)) are
            // unaffected by the within-batch smoothing.
            let per_frame = (clock.virtual_ms() - batch_start_ms) / n as f64;
            metrics
                .per_frame_ms
                .extend(std::iter::repeat_n(per_frame, n));
        }
        index = end;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::plan::{build_plan, PlanOptions};
    use crate::frontend::library;
    use crate::frontend::predicate::Pred;
    use crate::frontend::query::Query;
    use std::sync::Arc;
    use vqpy_video::color::NamedColor;
    use vqpy_video::presets;
    use vqpy_video::scene::Scene;
    use vqpy_video::source::SyntheticVideo;

    fn video(seconds: f64) -> SyntheticVideo {
        SyntheticVideo::new(Scene::generate(presets::jackson(), 5150, seconds))
    }

    fn red_car_query() -> Arc<Query> {
        Query::builder("RedCar")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.5) & Pred::eq("car", "color", "red"))
            .frame_output(&[("car", "track_id"), ("car", "bbox")])
            .build()
            .unwrap()
    }

    #[test]
    fn red_car_query_finds_red_cars() {
        let zoo = ModelZoo::standard();
        let v = video(30.0);
        let plan = build_plan(&[red_car_query()], &zoo, &PlanOptions::vqpy_default()).unwrap();
        let clock = Clock::new();
        let results = execute_plan(&plan, &v, &zoo, &clock, &ExecConfig::default()).unwrap();
        assert_eq!(results.len(), 1);
        let r = &results[0];

        // Compare against ground truth: frames with a visible red vehicle.
        let scene = v.scene().unwrap();
        let truth: BTreeSet<u64> = (0..scene.frame_count())
            .filter(|&f| {
                scene.truth_at(f).visible.iter().any(|e| {
                    e.attrs
                        .as_vehicle()
                        .map(|a| a.color == NamedColor::Red)
                        .unwrap_or(false)
                })
            })
            .collect();
        let predicted = r.hit_frame_set();
        if truth.is_empty() {
            assert!(predicted.len() < 10, "no red cars but many hits?");
            return;
        }
        let tp = predicted.intersection(&truth).count() as f64;
        let precision = tp / predicted.len().max(1) as f64;
        let recall = tp / truth.len() as f64;
        assert!(precision > 0.7, "precision {precision}");
        assert!(recall > 0.6, "recall {recall}");
        assert!(r.virtual_ms > 0.0);
    }

    #[test]
    fn results_are_invariant_to_batch_size() {
        let zoo = ModelZoo::standard();
        let v = video(12.0);
        let plan = build_plan(&[red_car_query()], &zoo, &PlanOptions::vqpy_default()).unwrap();
        let mut reference: Option<Vec<u64>> = None;
        for batch_size in [1usize, 3, 8, 64] {
            let clock = Clock::new();
            let results = execute_plan(
                &plan,
                &v,
                &zoo,
                &clock,
                &ExecConfig {
                    batch_size,
                    ..ExecConfig::default()
                },
            )
            .unwrap();
            let hits = results[0].hit_frames();
            match &reference {
                None => reference = Some(hits),
                Some(r) => assert_eq!(r, &hits, "batch size {batch_size} changed results"),
            }
        }
    }

    #[test]
    fn batching_amortizes_model_overhead() {
        let zoo = ModelZoo::standard();
        let v = video(10.0);
        let plan = build_plan(&[red_car_query()], &zoo, &PlanOptions::vqpy_default()).unwrap();
        let clock_b1 = Clock::new();
        execute_plan(
            &plan,
            &v,
            &zoo,
            &clock_b1,
            &ExecConfig {
                batch_size: 1,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        let clock_b16 = Clock::new();
        execute_plan(
            &plan,
            &v,
            &zoo,
            &clock_b16,
            &ExecConfig {
                batch_size: 16,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert!(
            clock_b16.virtual_ms() < clock_b1.virtual_ms(),
            "batched execution must be cheaper: {} vs {}",
            clock_b16.virtual_ms(),
            clock_b1.virtual_ms()
        );
    }

    #[test]
    fn reuse_reduces_model_invocations() {
        let zoo = ModelZoo::standard();
        let v = video(30.0);
        // Intrinsic annotations (the §4.2 user opt-in) enable memoization.
        let q = Query::builder("RedCarIntrinsic")
            .vobj("car", library::vehicle_schema_intrinsic())
            .frame_constraint(Pred::gt("car", "score", 0.5) & Pred::eq("car", "color", "red"))
            .build()
            .unwrap();
        let plan = build_plan(&[q], &zoo, &PlanOptions::vqpy_default()).unwrap();

        let clock_on = Clock::new();
        let on = execute_plan(
            &plan,
            &v,
            &zoo,
            &clock_on,
            &ExecConfig {
                enable_intrinsic_reuse: true,
                ..ExecConfig::default()
            },
        )
        .unwrap();

        let clock_off = Clock::new();
        let off = execute_plan(
            &plan,
            &v,
            &zoo,
            &clock_off,
            &ExecConfig {
                enable_intrinsic_reuse: false,
                ..ExecConfig::default()
            },
        )
        .unwrap();

        let calls_on = clock_on
            .stat("color_detect")
            .map(|s| s.invocations)
            .unwrap_or(0);
        let calls_off = clock_off
            .stat("color_detect")
            .map(|s| s.invocations)
            .unwrap_or(0);
        assert!(
            calls_on * 3 < calls_off,
            "reuse should slash color model calls: {calls_on} vs {calls_off}"
        );
        // Nearly identical frames either way: memoization pins one sample
        // of the per-frame classifier noise, so a handful of borderline
        // frames may flip, but accuracy must not degrade materially.
        let f1 = crate::scoring::f1_frames(&on[0].hit_frame_set(), &off[0].hit_frame_set()).f1;
        assert!(f1 > 0.9, "reuse changed results too much: F1 {f1}");
    }

    #[test]
    fn aggregate_count_distinct_tracks() {
        let zoo = ModelZoo::standard();
        let v = video(20.0);
        let q = Query::builder("CountCars")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.5))
            .video_output(Aggregate::CountDistinctTracks {
                alias: "car".into(),
            })
            .build()
            .unwrap();
        let plan = build_plan(&[q], &zoo, &PlanOptions::vqpy_default()).unwrap();
        let clock = Clock::new();
        let results = execute_plan(&plan, &v, &zoo, &clock, &ExecConfig::default()).unwrap();
        let count = results[0].video_value.clone().unwrap().as_i64().unwrap();
        // Roughly the number of distinct vehicles in the scene (tracker
        // fragmentation can inflate slightly; detection misses deflate).
        let scene_vehicles = v
            .scene()
            .unwrap()
            .entities()
            .iter()
            .filter(|e| matches!(e.attrs, vqpy_video::EntityAttrs::Vehicle(_)))
            .count() as i64;
        assert!(count > 0);
        assert!(
            (count as f64) < (scene_vehicles as f64) * 2.5 + 5.0,
            "count {count} vs scene {scene_vehicles}"
        );
    }

    #[test]
    fn per_frame_series_is_recorded_on_request() {
        let zoo = ModelZoo::standard();
        let v = video(5.0);
        let plan = build_plan(&[red_car_query()], &zoo, &PlanOptions::vqpy_default()).unwrap();
        let clock = Clock::new();
        let results = execute_plan(
            &plan,
            &v,
            &zoo,
            &clock,
            &ExecConfig {
                record_per_frame_ms: true,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            results[0].metrics.per_frame_ms.len() as u64,
            results[0].metrics.frames_total
        );
        assert!(results[0].metrics.per_frame_ms.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn shared_execution_matches_individual_results() {
        let zoo = ModelZoo::standard();
        let v = video(20.0);
        let q_red = red_car_query();
        let q_black = Query::builder("BlackCar")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.5) & Pred::eq("car", "color", "black"))
            .build()
            .unwrap();

        // Individually.
        let c1 = Clock::new();
        let plan_red =
            build_plan(&[Arc::clone(&q_red)], &zoo, &PlanOptions::vqpy_default()).unwrap();
        let red_alone = execute_plan(&plan_red, &v, &zoo, &c1, &ExecConfig::default()).unwrap();
        let plan_black =
            build_plan(&[Arc::clone(&q_black)], &zoo, &PlanOptions::vqpy_default()).unwrap();
        let black_alone = execute_plan(&plan_black, &v, &zoo, &c1, &ExecConfig::default()).unwrap();

        // Shared.
        let c2 = Clock::new();
        let plan_shared = build_plan(
            &[Arc::clone(&q_red), Arc::clone(&q_black)],
            &zoo,
            &PlanOptions::vqpy_default(),
        )
        .unwrap();
        let shared = execute_plan(&plan_shared, &v, &zoo, &c2, &ExecConfig::default()).unwrap();

        assert_eq!(shared[0].hit_frame_set(), red_alone[0].hit_frame_set());
        assert_eq!(shared[1].hit_frame_set(), black_alone[0].hit_frame_set());
        // Sharing the detector must be cheaper than running twice.
        assert!(
            c2.virtual_ms() < c1.virtual_ms() * 0.75,
            "shared {} vs individual {}",
            c2.virtual_ms(),
            c1.virtual_ms()
        );
    }
}
