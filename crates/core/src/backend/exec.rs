//! The execution engine: instantiates a [`PlanDag`] into live operators and
//! streams frames through them, collecting per-query frame hits and video
//! aggregates.

use crate::backend::ops::{
    BinaryFilterOp, DetectOp, DiffFrameFilter, ExecCtx, FilterOp, FrameSlot, JoinOp, Operator,
    ProjectOp, RelationProjectOp, TrackOp,
};
use crate::backend::plan::{OpSpec, PlanDag};
use crate::backend::reuse::{ReuseCache, ReuseStats};
use crate::error::{Result, VqpyError};
use crate::frontend::query::Aggregate;
use crate::frontend::vobj::ResolvedProperty;
use std::collections::{BTreeMap, BTreeSet};
use vqpy_models::{Clock, ModelZoo, Value};
use vqpy_video::source::VideoSource;

/// Execution configuration.
#[derive(Debug, Clone)]
pub struct ExecConfig {
    /// Frames per execution batch (the user-defined batch size of §4.1).
    pub batch_size: usize,
    /// Object-level computation reuse (§4.2) toggle.
    pub enable_intrinsic_reuse: bool,
    /// Record per-frame virtual cost (Figure 13(b) series).
    pub record_per_frame_ms: bool,
}

impl Default for ExecConfig {
    fn default() -> Self {
        Self {
            batch_size: 8,
            enable_intrinsic_reuse: true,
            record_per_frame_ms: false,
        }
    }
}

/// Execution counters.
#[derive(Debug, Clone, Default)]
pub struct ExecMetrics {
    pub frames_total: u64,
    /// Frames surviving the frame filters (i.e. reaching detectors).
    pub frames_processed: u64,
    pub reuse: ReuseStats,
    /// Virtual ms spent on each frame (only when
    /// [`ExecConfig::record_per_frame_ms`] is set).
    pub per_frame_ms: Vec<f64>,
}

/// A frame satisfying a query, with its projected outputs.
#[derive(Debug, Clone)]
pub struct FrameHit {
    pub frame: u64,
    pub time_s: f64,
    /// One output row per matching combo: `(alias.prop, value)` pairs.
    pub outputs: Vec<Vec<(String, Value)>>,
}

/// The result of one query's execution.
#[derive(Debug, Clone)]
pub struct QueryResult {
    pub query_name: String,
    pub frame_hits: Vec<FrameHit>,
    /// Video-level aggregate (Figure 7), if the query declared one.
    pub video_value: Option<Value>,
    pub metrics: ExecMetrics,
    /// Virtual milliseconds charged during execution.
    pub virtual_ms: f64,
}

impl QueryResult {
    /// Sorted hit frame indices.
    pub fn hit_frames(&self) -> Vec<u64> {
        self.frame_hits.iter().map(|h| h.frame).collect()
    }

    /// Hit frames as a set, for scoring.
    pub fn hit_frame_set(&self) -> BTreeSet<u64> {
        self.frame_hits.iter().map(|h| h.frame).collect()
    }
}

fn instantiate(plan: &PlanDag, zoo: &ModelZoo) -> Result<Vec<Box<dyn Operator>>> {
    let mut ops: Vec<Box<dyn Operator>> = Vec::with_capacity(plan.ops.len());
    for spec in &plan.ops {
        let op: Box<dyn Operator> = match spec {
            OpSpec::DiffFilter { threshold } => Box::new(DiffFrameFilter::new(*threshold)),
            OpSpec::BinaryFilter { model } => {
                Box::new(BinaryFilterOp::new(zoo.frame_classifier(model)?))
            }
            OpSpec::Detect { detector, aliases } => {
                Box::new(DetectOp::new(zoo.detector(detector)?, aliases.clone()))
            }
            OpSpec::Track { alias } => Box::new(TrackOp::new(alias.clone())),
            OpSpec::Project { alias, prop } => {
                Box::new(ProjectOp::new(alias.clone(), resolve_def(plan, alias, prop)?))
            }
            OpSpec::FusedProjectFilter {
                alias,
                prop,
                pred,
                required,
            } => Box::new(
                ProjectOp::new(alias.clone(), resolve_def(plan, alias, prop)?)
                    .with_fused_filter(pred.clone(), *required),
            ),
            OpSpec::Filter {
                alias,
                pred,
                required,
            } => Box::new(FilterOp::new(alias.clone(), pred.clone(), *required)),
            OpSpec::ProjectRelation { index } => {
                Box::new(RelationProjectOp::new(plan.relations[*index].clone()))
            }
            OpSpec::Join { index } => {
                let j = &plan.joins[*index];
                let aliases: Vec<String> =
                    j.query.vobjs().iter().map(|v| v.alias.clone()).collect();
                Box::new(JoinOp::new(
                    j.query.name().to_owned(),
                    aliases,
                    j.query.relations().to_vec(),
                    j.pred.clone(),
                    j.kills_frame,
                ))
            }
        };
        ops.push(op);
    }
    Ok(ops)
}

fn resolve_def(
    plan: &PlanDag,
    alias: &str,
    prop: &str,
) -> Result<crate::frontend::property::PropertyDef> {
    let schema = plan
        .schemas
        .get(alias)
        .ok_or_else(|| VqpyError::UnknownAlias(alias.to_owned()))?;
    match schema.resolve_property(prop) {
        Some(ResolvedProperty::Defined(def)) => Ok(def.clone()),
        _ => Err(VqpyError::UnknownProperty {
            schema: schema.name().to_owned(),
            property: prop.to_owned(),
        }),
    }
}

/// Per-query aggregation state.
#[derive(Debug, Default)]
struct AggState {
    distinct_tracks: BTreeSet<i64>,
    per_frame_counts: Vec<u64>,
}

/// Executes a plan over a video, producing one result per query in the
/// plan, in plan order.
///
/// # Errors
///
/// Fails when plan operators reference unknown models or properties.
pub fn execute_plan(
    plan: &PlanDag,
    source: &dyn VideoSource,
    zoo: &ModelZoo,
    clock: &Clock,
    config: &ExecConfig,
) -> Result<Vec<QueryResult>> {
    let mut ops = instantiate(plan, zoo)?;
    let mut reuse = ReuseCache::new();
    let mut metrics = ExecMetrics::default();
    let start_ms = clock.virtual_ms();

    let mut hits: BTreeMap<String, Vec<FrameHit>> = BTreeMap::new();
    let mut aggs: BTreeMap<String, AggState> = BTreeMap::new();
    for j in &plan.joins {
        hits.insert(j.query.name().to_owned(), Vec::new());
        aggs.insert(j.query.name().to_owned(), AggState::default());
    }

    let first_detect = plan
        .ops
        .iter()
        .position(|o| matches!(o, OpSpec::Detect { .. }))
        .unwrap_or(0);
    let total = source.frame_count();
    let batch = config.batch_size.max(1) as u64;
    let mut index = 0u64;
    while index < total {
        let end = (index + batch).min(total);
        for f in index..end {
            let frame_start_ms = clock.virtual_ms();
            clock.charge_labeled("video_decode", vqpy_models::zoo::COST_VIDEO_DECODE);
            let frame = source.frame(f);
            let mut slot = FrameSlot::new(frame);
            metrics.frames_total += 1;
            {
                let mut ctx = ExecCtx {
                    zoo,
                    clock,
                    fps: source.fps(),
                    reuse: &mut reuse,
                    enable_reuse: config.enable_intrinsic_reuse,
                };
                for (oi, op) in ops.iter_mut().enumerate() {
                    if oi == first_detect && slot.alive {
                        metrics.frames_processed += 1;
                    }
                    if !slot.alive && !op.wants_dead_frames() {
                        continue;
                    }
                    op.process(&mut slot, &mut ctx)?;
                }
            }

            // Collect matches per query.
            for j in &plan.joins {
                let name = j.query.name();
                let combos = slot.matches.get(name).cloned().unwrap_or_default();
                let agg = aggs.get_mut(name).expect("initialized above");
                // Aggregation bookkeeping (count per frame even when zero).
                let agg_alias = match j.query.video_output() {
                    Some(Aggregate::CountDistinctTracks { alias })
                    | Some(Aggregate::AvgPerFrame { alias })
                    | Some(Aggregate::MaxPerFrame { alias }) => Some(alias.clone()),
                    _ => None,
                };
                if let Some(alias) = &agg_alias {
                    let mut frame_nodes = BTreeSet::new();
                    for c in &combos {
                        if let Some(&node) = c.bindings.get(alias) {
                            frame_nodes.insert(node);
                            if let Some(Value::Int(t)) =
                                Some(slot.graph.nodes[node].value_of("track_id"))
                            {
                                agg.distinct_tracks.insert(t);
                            }
                        }
                    }
                    agg.per_frame_counts.push(frame_nodes.len() as u64);
                } else {
                    agg.per_frame_counts.push(u64::from(!combos.is_empty()));
                }

                if !combos.is_empty() {
                    let outputs: Vec<Vec<(String, Value)>> = combos
                        .iter()
                        .map(|c| {
                            j.query
                                .frame_output()
                                .iter()
                                .filter_map(|p| {
                                    c.bindings.get(&p.alias).map(|&node| {
                                        (
                                            format!("{}.{}", p.alias, p.prop),
                                            slot.graph.nodes[node].value_of(&p.prop),
                                        )
                                    })
                                })
                                .collect()
                        })
                        .collect();
                    hits.get_mut(name).expect("initialized").push(FrameHit {
                        frame: slot.frame.index,
                        time_s: slot.frame.time_s,
                        outputs,
                    });
                }
            }
            if config.record_per_frame_ms {
                metrics.per_frame_ms.push(clock.virtual_ms() - frame_start_ms);
            }
        }
        index = end;
    }

    metrics.reuse = reuse.stats();
    let total_ms = clock.virtual_ms() - start_ms;

    let mut results = Vec::with_capacity(plan.joins.len());
    for j in &plan.joins {
        let name = j.query.name().to_owned();
        let agg = &aggs[&name];
        let video_value = j.query.video_output().map(|a| match a {
            Aggregate::CountDistinctTracks { .. } => {
                Value::Int(agg.distinct_tracks.len() as i64)
            }
            Aggregate::AvgPerFrame { .. } => {
                let n = agg.per_frame_counts.len().max(1) as f64;
                Value::Float(agg.per_frame_counts.iter().sum::<u64>() as f64 / n)
            }
            Aggregate::MaxPerFrame { .. } => {
                Value::Int(*agg.per_frame_counts.iter().max().unwrap_or(&0) as i64)
            }
            Aggregate::CountFrames => {
                Value::Int(agg.per_frame_counts.iter().filter(|&&c| c > 0).count() as i64)
            }
        });
        results.push(QueryResult {
            query_name: name.clone(),
            frame_hits: hits.remove(&name).expect("initialized"),
            video_value,
            metrics: metrics.clone(),
            virtual_ms: total_ms,
        });
    }
    Ok(results)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::plan::{build_plan, PlanOptions};
    use crate::frontend::library;
    use crate::frontend::predicate::Pred;
    use crate::frontend::query::Query;
    use std::sync::Arc;
    use vqpy_video::color::NamedColor;
    use vqpy_video::presets;
    use vqpy_video::scene::Scene;
    use vqpy_video::source::SyntheticVideo;

    fn video(seconds: f64) -> SyntheticVideo {
        SyntheticVideo::new(Scene::generate(presets::jackson(), 5150, seconds))
    }

    fn red_car_query() -> Arc<Query> {
        Query::builder("RedCar")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.5) & Pred::eq("car", "color", "red"))
            .frame_output(&[("car", "track_id"), ("car", "bbox")])
            .build()
            .unwrap()
    }

    #[test]
    fn red_car_query_finds_red_cars() {
        let zoo = ModelZoo::standard();
        let v = video(30.0);
        let plan = build_plan(&[red_car_query()], &zoo, &PlanOptions::vqpy_default()).unwrap();
        let clock = Clock::new();
        let results =
            execute_plan(&plan, &v, &zoo, &clock, &ExecConfig::default()).unwrap();
        assert_eq!(results.len(), 1);
        let r = &results[0];

        // Compare against ground truth: frames with a visible red vehicle.
        let scene = v.scene().unwrap();
        let truth: BTreeSet<u64> = (0..scene.frame_count())
            .filter(|&f| {
                scene.truth_at(f).visible.iter().any(|e| {
                    e.attrs
                        .as_vehicle()
                        .map(|a| a.color == NamedColor::Red)
                        .unwrap_or(false)
                })
            })
            .collect();
        let predicted = r.hit_frame_set();
        if truth.is_empty() {
            assert!(predicted.len() < 10, "no red cars but many hits?");
            return;
        }
        let tp = predicted.intersection(&truth).count() as f64;
        let precision = tp / predicted.len().max(1) as f64;
        let recall = tp / truth.len() as f64;
        assert!(precision > 0.7, "precision {precision}");
        assert!(recall > 0.6, "recall {recall}");
        assert!(r.virtual_ms > 0.0);
    }

    #[test]
    fn reuse_reduces_model_invocations() {
        let zoo = ModelZoo::standard();
        let v = video(30.0);
        // Intrinsic annotations (the §4.2 user opt-in) enable memoization.
        let q = Query::builder("RedCarIntrinsic")
            .vobj("car", library::vehicle_schema_intrinsic())
            .frame_constraint(Pred::gt("car", "score", 0.5) & Pred::eq("car", "color", "red"))
            .build()
            .unwrap();
        let plan = build_plan(&[q], &zoo, &PlanOptions::vqpy_default()).unwrap();

        let clock_on = Clock::new();
        let on = execute_plan(
            &plan,
            &v,
            &zoo,
            &clock_on,
            &ExecConfig {
                enable_intrinsic_reuse: true,
                ..ExecConfig::default()
            },
        )
        .unwrap();

        let clock_off = Clock::new();
        let off = execute_plan(
            &plan,
            &v,
            &zoo,
            &clock_off,
            &ExecConfig {
                enable_intrinsic_reuse: false,
                ..ExecConfig::default()
            },
        )
        .unwrap();

        let calls_on = clock_on.stat("color_detect").map(|s| s.invocations).unwrap_or(0);
        let calls_off = clock_off.stat("color_detect").map(|s| s.invocations).unwrap_or(0);
        assert!(
            calls_on * 3 < calls_off,
            "reuse should slash color model calls: {calls_on} vs {calls_off}"
        );
        // Nearly identical frames either way: memoization pins one sample
        // of the per-frame classifier noise, so a handful of borderline
        // frames may flip, but accuracy must not degrade materially.
        let f1 = crate::scoring::f1_frames(&on[0].hit_frame_set(), &off[0].hit_frame_set()).f1;
        assert!(f1 > 0.9, "reuse changed results too much: F1 {f1}");
    }

    #[test]
    fn aggregate_count_distinct_tracks() {
        let zoo = ModelZoo::standard();
        let v = video(20.0);
        let q = Query::builder("CountCars")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.5))
            .video_output(Aggregate::CountDistinctTracks { alias: "car".into() })
            .build()
            .unwrap();
        let plan = build_plan(&[q], &zoo, &PlanOptions::vqpy_default()).unwrap();
        let clock = Clock::new();
        let results = execute_plan(&plan, &v, &zoo, &clock, &ExecConfig::default()).unwrap();
        let count = results[0].video_value.clone().unwrap().as_i64().unwrap();
        // Roughly the number of distinct vehicles in the scene (tracker
        // fragmentation can inflate slightly; detection misses deflate).
        let scene_vehicles = v
            .scene()
            .unwrap()
            .entities()
            .iter()
            .filter(|e| matches!(e.attrs, vqpy_video::EntityAttrs::Vehicle(_)))
            .count() as i64;
        assert!(count > 0);
        assert!(
            (count as f64) < (scene_vehicles as f64) * 2.5 + 5.0,
            "count {count} vs scene {scene_vehicles}"
        );
    }

    #[test]
    fn per_frame_series_is_recorded_on_request() {
        let zoo = ModelZoo::standard();
        let v = video(5.0);
        let plan = build_plan(&[red_car_query()], &zoo, &PlanOptions::vqpy_default()).unwrap();
        let clock = Clock::new();
        let results = execute_plan(
            &plan,
            &v,
            &zoo,
            &clock,
            &ExecConfig {
                record_per_frame_ms: true,
                ..ExecConfig::default()
            },
        )
        .unwrap();
        assert_eq!(
            results[0].metrics.per_frame_ms.len() as u64,
            results[0].metrics.frames_total
        );
        assert!(results[0].metrics.per_frame_ms.iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn shared_execution_matches_individual_results() {
        let zoo = ModelZoo::standard();
        let v = video(20.0);
        let q_red = red_car_query();
        let q_black = Query::builder("BlackCar")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.5) & Pred::eq("car", "color", "black"))
            .build()
            .unwrap();

        // Individually.
        let c1 = Clock::new();
        let plan_red = build_plan(&[Arc::clone(&q_red)], &zoo, &PlanOptions::vqpy_default()).unwrap();
        let red_alone = execute_plan(&plan_red, &v, &zoo, &c1, &ExecConfig::default()).unwrap();
        let plan_black =
            build_plan(&[Arc::clone(&q_black)], &zoo, &PlanOptions::vqpy_default()).unwrap();
        let black_alone = execute_plan(&plan_black, &v, &zoo, &c1, &ExecConfig::default()).unwrap();

        // Shared.
        let c2 = Clock::new();
        let plan_shared = build_plan(
            &[Arc::clone(&q_red), Arc::clone(&q_black)],
            &zoo,
            &PlanOptions::vqpy_default(),
        )
        .unwrap();
        let shared = execute_plan(&plan_shared, &v, &zoo, &c2, &ExecConfig::default()).unwrap();

        assert_eq!(shared[0].hit_frame_set(), red_alone[0].hit_frame_set());
        assert_eq!(shared[1].hit_frame_set(), black_alone[0].hit_frame_set());
        // Sharing the detector must be cheaper than running twice.
        assert!(
            c2.virtual_ms() < c1.virtual_ms() * 0.75,
            "shared {} vs individual {}",
            c2.virtual_ms(),
            c1.virtual_ms()
        );
    }
}
