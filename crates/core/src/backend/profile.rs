//! Canary profiling (§4.3): run every candidate plan on a short canary
//! clip, score each against the most-general plan's labels, and pick the
//! cheapest plan meeting the accuracy target.

use crate::backend::exec::{execute_plan, ExecConfig};
use crate::backend::plan::PlanDag;
use crate::error::{Result, VqpyError};
use crate::scoring::f1_frames;
use std::collections::BTreeSet;
use vqpy_models::{Clock, ModelZoo};
use vqpy_video::source::VideoSource;

/// Profiling outcome for one candidate plan.
#[derive(Debug, Clone)]
pub struct PlanProfile {
    pub label: String,
    /// Mean F1 across the plan's queries, against the reference plan.
    pub f1: f32,
    /// Virtual cost of the canary run in milliseconds.
    pub cost_ms: f64,
}

/// Profiles `candidates` on `canary` and returns the index of the cheapest
/// plan whose F1 (vs. `candidates[0]`, the most-general reference) meets
/// `accuracy_target`, together with all profiles.
///
/// Candidates are profiled in parallel, each with its own clock, so
/// profiling does not pollute the session's execution clock.
///
/// # Errors
///
/// Propagates execution errors; returns [`VqpyError::NoFeasiblePlan`] when
/// no candidate reaches the target (the reference itself always scores 1.0,
/// so this only happens with a target above 1.0).
pub fn profile_and_choose(
    candidates: &[PlanDag],
    canary: &dyn VideoSource,
    zoo: &ModelZoo,
    config: &ExecConfig,
    accuracy_target: f32,
) -> Result<(usize, Vec<PlanProfile>)> {
    assert!(!candidates.is_empty(), "need at least the reference plan");

    // Run all candidates in parallel, one clock each.
    let mut runs: Vec<Option<(Vec<BTreeSet<u64>>, f64)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = candidates
            .iter()
            .map(|plan| {
                scope.spawn(move || -> Result<(Vec<BTreeSet<u64>>, f64)> {
                    let clock = Clock::new();
                    let results = execute_plan(plan, canary, zoo, &clock, config)?;
                    let hits = results.iter().map(|r| r.hit_frame_set()).collect();
                    Ok((hits, clock.virtual_ms()))
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(Ok(r)) => runs.push(Some(r)),
                Ok(Err(_)) | Err(_) => runs.push(None),
            }
        }
    });

    let Some(Some((reference_hits, _))) = runs.first() else {
        return Err(VqpyError::InvalidQuery(
            "reference plan failed during canary profiling".into(),
        ));
    };
    let reference_hits = reference_hits.clone();

    let mut profiles = Vec::with_capacity(candidates.len());
    for (plan, run) in candidates.iter().zip(&runs) {
        match run {
            Some((hits, cost)) => {
                let mut f1_sum = 0.0f64;
                for (h, r) in hits.iter().zip(&reference_hits) {
                    f1_sum += f1_frames(h, r).f1;
                }
                let f1 = (f1_sum / reference_hits.len().max(1) as f64) as f32;
                profiles.push(PlanProfile {
                    label: plan.label.clone(),
                    f1,
                    cost_ms: *cost,
                });
            }
            None => profiles.push(PlanProfile {
                label: plan.label.clone(),
                f1: 0.0,
                cost_ms: f64::INFINITY,
            }),
        }
    }

    let mut best: Option<usize> = None;
    for (i, p) in profiles.iter().enumerate() {
        if p.f1 >= accuracy_target {
            match best {
                None => best = Some(i),
                Some(b) if p.cost_ms < profiles[b].cost_ms => best = Some(i),
                _ => {}
            }
        }
    }
    match best {
        Some(i) => Ok((i, profiles)),
        None => {
            let best_f1 = profiles.iter().map(|p| p.f1).fold(0.0f32, f32::max);
            Err(VqpyError::NoFeasiblePlan {
                target: accuracy_target,
                best: best_f1,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::optimize::enumerate_plans;
    use crate::backend::plan::PlanOptions;
    use crate::extend::{BinaryFilterReg, ExtensionRegistry, SpecializedNnReg};
    use crate::frontend::library;
    use crate::frontend::predicate::Pred;
    use crate::frontend::query::Query;
    use std::sync::Arc;
    use vqpy_models::Value;
    use vqpy_video::presets;
    use vqpy_video::scene::Scene;
    use vqpy_video::source::SyntheticVideo;

    #[test]
    fn profiling_prefers_cheaper_plans_at_equal_accuracy() {
        let zoo = vqpy_models::ModelZoo::standard();
        let ext = ExtensionRegistry::new();
        ext.register_specialized_nn(SpecializedNnReg {
            schema: "Vehicle".into(),
            detector: "red_car_detector".into(),
            prop: "color".into(),
            value: Value::from("red"),
        });
        ext.register_binary_filter(BinaryFilterReg {
            schema: "Vehicle".into(),
            model: "no_red_on_road".into(),
        });
        let q = Query::builder("RedCar")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.5) & Pred::eq("car", "color", "red"))
            .build()
            .unwrap();
        let plans =
            enumerate_plans(&[Arc::clone(&q)], &zoo, &ext, &PlanOptions::vqpy_default()).unwrap();
        assert!(plans.len() > 1);
        let canary = SyntheticVideo::new(Scene::generate(presets::jackson(), 404, 15.0));
        let (chosen, profiles) =
            profile_and_choose(&plans, &canary, &zoo, &ExecConfig::default(), 0.8).unwrap();
        // Reference always scores 1.0 against itself.
        assert!((profiles[0].f1 - 1.0).abs() < 1e-6);
        // The chosen plan meets the target and is no more expensive than
        // the reference.
        assert!(profiles[chosen].f1 >= 0.8);
        assert!(profiles[chosen].cost_ms <= profiles[0].cost_ms);
    }

    #[test]
    fn unreachable_target_is_an_error() {
        let zoo = vqpy_models::ModelZoo::standard();
        let q = Query::builder("Any")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.5))
            .build()
            .unwrap();
        let plans = enumerate_plans(
            &[q],
            &zoo,
            &ExtensionRegistry::new(),
            &PlanOptions::vqpy_default(),
        )
        .unwrap();
        let canary = SyntheticVideo::new(Scene::generate(presets::banff(), 1, 3.0));
        let err =
            profile_and_choose(&plans, &canary, &zoo, &ExecConfig::default(), 1.5).unwrap_err();
        assert!(matches!(err, VqpyError::NoFeasiblePlan { .. }));
    }
}
