//! The object-centric backend (§4): object graph, operators, planner,
//! optimizer, canary profiler, execution engine, and reuse cache.

pub mod dispatch;
pub mod exec;
pub mod graph;
pub mod ops;
pub mod optimize;
pub mod pipeline;
pub mod plan;
pub mod profile;
pub mod reuse;
pub mod symbols;
