//! String interning for the execution hot path.
//!
//! Two interners live here:
//!
//! - [`SymbolTable`] / [`Sym`]: a *plan-local* dense `u32` interner built at
//!   plan-construction time, so per-frame structures (most importantly the
//!   reuse-cache key of §4.2) can be `Copy` tuples instead of owned
//!   `String`s. Serving-layer engines keep one append-only table across
//!   plan recompiles so symbols stay stable for the lifetime of a stream.
//! - [`Istr`] : a *process-global* leaked-string interner for the small,
//!   bounded vocabulary of aliases and class labels that
//!   [`VObjNode`](crate::backend::graph::VObjNode)s carry. Nodes are created
//!   per detection per frame; an `Istr` is `Copy`, so node construction no
//!   longer allocates two `String`s per detection.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::OnceLock;

/// An interned string: a dense index into the plan's [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// An append-only string interner, built at plan-construction time and
/// shared (immutably) by the executor.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, Sym>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its existing symbol when already present.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), s);
        s
    }

    /// The symbol of an already-interned name.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.index.get(name).copied()
    }

    /// The string behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics when the symbol came from a different table.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// The process-global [`Istr`] store. Entries are leaked once and live for
/// the process lifetime; the vocabulary (query aliases + detector class
/// labels) is small and bounded, so the leak is a deliberate arena.
fn istr_store() -> &'static RwLock<HashMap<&'static str, &'static str>> {
    static STORE: OnceLock<RwLock<HashMap<&'static str, &'static str>>> = OnceLock::new();
    STORE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// A process-interned immutable string: `Copy`, pointer-stable, and
/// allocation-free to clone or compare. Used for the per-node alias and
/// class-label fields of the object graph, which used to be the last
/// per-frame `String` allocations on the hot path.
#[derive(Clone, Copy)]
pub struct Istr(&'static str);

impl Istr {
    /// Interns `s`, returning the canonical copy. Repeated calls with the
    /// same content return the same pointer; construction off the hot path
    /// (operator setup) is the intended pattern.
    pub fn new(s: &str) -> Self {
        if let Some(&hit) = istr_store().read().get(s) {
            return Self(hit);
        }
        let mut store = istr_store().write();
        if let Some(&hit) = store.get(s) {
            return Self(hit);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        store.insert(leaked, leaked);
        Self(leaked)
    }

    /// The interned string.
    pub fn as_str(&self) -> &'static str {
        self.0
    }
}

impl std::ops::Deref for Istr {
    type Target = str;

    fn deref(&self) -> &str {
        self.0
    }
}

impl PartialEq for Istr {
    fn eq(&self, other: &Self) -> bool {
        // Interned strings are pointer-canonical; content check keeps
        // hand-constructed values (none today) correct too.
        std::ptr::eq(self.0, other.0) || self.0 == other.0
    }
}

impl Eq for Istr {}

impl PartialEq<str> for Istr {
    fn eq(&self, other: &str) -> bool {
        self.0 == other
    }
}

impl PartialEq<&str> for Istr {
    fn eq(&self, other: &&str) -> bool {
        self.0 == *other
    }
}

impl PartialEq<String> for Istr {
    fn eq(&self, other: &String) -> bool {
        self.0 == other.as_str()
    }
}

impl std::hash::Hash for Istr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.0.hash(state);
    }
}

impl PartialOrd for Istr {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Istr {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.cmp(other.0)
    }
}

impl std::fmt::Debug for Istr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.0, f)
    }
}

impl std::fmt::Display for Istr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl From<&str> for Istr {
    fn from(s: &str) -> Self {
        Self::new(s)
    }
}

impl From<&String> for Istr {
    fn from(s: &String) -> Self {
        Self::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn istr_interning_dedups_storage() {
        let a = Istr::new("car");
        let b = Istr::new("car");
        let c = Istr::new("person");
        assert_eq!(a, b);
        assert!(std::ptr::eq(a.as_str(), b.as_str()));
        assert_ne!(a, c);
        assert_eq!(a, "car");
        assert_eq!(a, *"car");
        assert_eq!(a, "car".to_owned());
        assert_eq!(format!("{a}"), "car");
        assert_eq!(format!("{a:?}"), "\"car\"");
    }

    #[test]
    fn istr_orders_by_content() {
        let mut v = [Istr::new("b"), Istr::new("a"), Istr::new("c")];
        v.sort();
        assert_eq!(
            v.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
            ["a", "b", "c"]
        );
    }

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("car");
        let b = t.intern("color");
        let a2 = t.intern("car");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = SymbolTable::new();
        let s = t.intern("plate");
        assert_eq!(t.resolve(s), "plate");
        assert_eq!(t.get("plate"), Some(s));
        assert_eq!(t.get("missing"), None);
    }

    #[test]
    fn symbols_are_dense_and_ordered_by_first_use() {
        let mut t = SymbolTable::new();
        assert_eq!(t.intern("a"), Sym(0));
        assert_eq!(t.intern("b"), Sym(1));
        assert_eq!(t.intern("a"), Sym(0));
        assert_eq!(t.intern("c"), Sym(2));
    }
}
