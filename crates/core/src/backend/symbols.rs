//! String interning for the execution hot path.
//!
//! Plan construction interns every alias and property name into a dense
//! `u32` [`Sym`], so per-frame structures (most importantly the reuse-cache
//! key of §4.2) can be `Copy` tuples instead of owned `String`s: the cache
//! probe that used to clone two strings per lookup is now allocation-free.

use std::collections::HashMap;

/// An interned string: a dense index into the plan's [`SymbolTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u32);

/// An append-only string interner, built at plan-construction time and
/// shared (immutably) by the executor.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    names: Vec<String>,
    index: HashMap<String, Sym>,
}

impl SymbolTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its existing symbol when already present.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        let s = Sym(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), s);
        s
    }

    /// The symbol of an already-interned name.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.index.get(name).copied()
    }

    /// The string behind a symbol.
    ///
    /// # Panics
    ///
    /// Panics when the symbol came from a different table.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.0 as usize]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut t = SymbolTable::new();
        let a = t.intern("car");
        let b = t.intern("color");
        let a2 = t.intern("car");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = SymbolTable::new();
        let s = t.intern("plate");
        assert_eq!(t.resolve(s), "plate");
        assert_eq!(t.get("plate"), Some(s));
        assert_eq!(t.get("missing"), None);
    }

    #[test]
    fn symbols_are_dense_and_ordered_by_first_use() {
        let mut t = SymbolTable::new();
        assert_eq!(t.intern("a"), Sym(0));
        assert_eq!(t.intern("b"), Sym(1));
        assert_eq!(t.intern("a"), Sym(0));
        assert_eq!(t.intern("c"), Sym(2));
    }
}
