//! The object-centric data model (§4.1): graphs of VObj nodes and relation
//! edges that flow through the operator DAG.
//!
//! Nodes are VObj instances detected on a frame; edges carry relation
//! properties. Motion linkage (the paper's motion edges) is recorded as the
//! tracker identity plus a back-pointer to the previous frame the track was
//! seen on; spatial edges live inside the frame graph. Duration and
//! temporal edges materialize in composition results (`compose` module)
//! rather than per-frame graphs.

use crate::backend::symbols::Istr;
use crate::frontend::property::BuiltinProp;
use std::collections::BTreeMap;
use vqpy_models::{Detection, Value};
use vqpy_tracker::TrackId;
use vqpy_video::entity::EntityId;
use vqpy_video::geometry::BBox;

/// Index of a node within its frame graph.
pub type NodeId = usize;

/// A VObj instance on one frame.
///
/// `alias` and `class_label` are process-interned ([`Istr`]): nodes are
/// created per detection per frame, and the interned fields make that
/// construction allocation-free (the vocabulary is the bounded set of query
/// aliases and detector class labels).
#[derive(Debug, Clone)]
pub struct VObjNode {
    /// Query alias this node belongs to.
    pub alias: Istr,
    pub class_label: Istr,
    pub bbox: BBox,
    pub score: f32,
    /// Tracker identity, once the tracker operator has run.
    pub track_id: Option<TrackId>,
    /// Whether the track has enough hits to be trusted for stateful props.
    pub track_confirmed: bool,
    /// Whether this object was first seen on this frame.
    pub track_is_new: bool,
    /// Frame index where this track was previously seen (motion edge).
    pub prev_frame: Option<u64>,
    /// Computed property values.
    pub props: BTreeMap<String, Value>,
    /// Simulation linkage for scoring only; engines must not read it.
    pub sim_entity: Option<EntityId>,
    /// Dead nodes have been filtered out but stay in place so `NodeId`s
    /// remain stable.
    pub alive: bool,
}

impl VObjNode {
    /// Creates a node from a detection. Interns `alias` and the detection's
    /// class label; hot paths that already hold interned values should use
    /// [`VObjNode::from_detection_interned`] instead.
    pub fn from_detection(alias: &str, det: &Detection) -> Self {
        Self::from_detection_interned(Istr::new(alias), Istr::new(&det.class_label), det)
    }

    /// Creates a node from a detection with pre-interned alias and class
    /// label — the allocation-free path used by the detect operator.
    pub fn from_detection_interned(alias: Istr, class_label: Istr, det: &Detection) -> Self {
        Self {
            alias,
            class_label,
            bbox: det.bbox,
            score: det.score,
            track_id: None,
            track_confirmed: false,
            track_is_new: true,
            prev_frame: None,
            props: BTreeMap::new(),
            sim_entity: det.sim_entity,
            alive: true,
        }
    }

    /// Reconstructs the detection view of this node (for attribute models).
    pub fn as_detection(&self) -> Detection {
        Detection {
            class_label: self.class_label.as_str().to_owned(),
            bbox: self.bbox,
            score: self.score,
            sim_entity: self.sim_entity,
        }
    }

    /// Value of a built-in property.
    pub fn builtin(&self, b: BuiltinProp) -> Value {
        match b {
            BuiltinProp::Bbox => Value::BBox(self.bbox),
            BuiltinProp::Score => Value::Float(self.score as f64),
            BuiltinProp::ClassLabel => Value::Str(self.class_label.as_str().to_owned()),
            BuiltinProp::TrackId => match self.track_id {
                Some(id) => Value::Int(id as i64),
                None => Value::Null,
            },
            BuiltinProp::Center => Value::Point(self.bbox.center()),
        }
    }

    /// Value of any property: computed first, then built-ins, else `Null`.
    pub fn value_of(&self, prop: &str) -> Value {
        if let Some(v) = self.props.get(prop) {
            return v.clone();
        }
        match BuiltinProp::from_name(prop) {
            Some(b) => self.builtin(b),
            None => Value::Null,
        }
    }

    /// All properties (computed + built-ins) as an evaluation map.
    pub fn prop_map(&self) -> BTreeMap<String, Value> {
        let mut m = self.props.clone();
        for b in [
            BuiltinProp::Bbox,
            BuiltinProp::Score,
            BuiltinProp::ClassLabel,
            BuiltinProp::TrackId,
            BuiltinProp::Center,
        ] {
            m.entry(b.name().to_owned())
                .or_insert_with(|| self.builtin(b));
        }
        m
    }
}

/// Kinds of relation edges (§4.1's data model).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// Same object, consecutive frames (carried by track ids here).
    Motion,
    /// Two objects on the same frame.
    Spatial,
    /// Two objects within a frame-distance constraint.
    Duration,
    /// From-object precedes to-object.
    Temporal,
}

/// A relation edge between two nodes of the same frame graph.
#[derive(Debug, Clone)]
pub struct Edge {
    pub kind: EdgeKind,
    /// Relation name (matches the query's `RelationDecl`).
    pub relation: String,
    pub from: NodeId,
    pub to: NodeId,
    pub props: BTreeMap<String, Value>,
}

/// The per-frame object graph.
#[derive(Debug, Clone, Default)]
pub struct FrameGraph {
    pub nodes: Vec<VObjNode>,
    pub edges: Vec<Edge>,
}

impl FrameGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node, returning its id.
    pub fn add_node(&mut self, node: VObjNode) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    /// Adds an edge.
    pub fn add_edge(&mut self, edge: Edge) {
        self.edges.push(edge);
    }

    /// Ids of alive nodes with the given alias.
    pub fn alive_of(&self, alias: &str) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.alive && n.alias == *alias)
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of alive nodes of an alias.
    pub fn alive_count(&self, alias: &str) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.alive && n.alias == *alias)
            .count()
    }

    /// The edge of `relation` connecting `from` to `to`, if present.
    pub fn edge_between(&self, relation: &str, from: NodeId, to: NodeId) -> Option<&Edge> {
        self.edges
            .iter()
            .find(|e| e.relation == relation && e.from == from && e.to == to)
    }

    /// Marks a node dead.
    pub fn kill(&mut self, id: NodeId) {
        if let Some(n) = self.nodes.get_mut(id) {
            n.alive = false;
        }
    }

    /// Removes all nodes and edges, keeping the allocations (slot
    /// workspaces reset graphs once per frame).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.edges.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqpy_video::geometry::Point;

    fn node(alias: &str) -> VObjNode {
        VObjNode::from_detection(
            alias,
            &Detection {
                class_label: "car".into(),
                bbox: BBox::from_center(Point::new(10.0, 10.0), 20.0, 10.0),
                score: 0.9,
                sim_entity: Some(7),
            },
        )
    }

    #[test]
    fn builtins_reflect_detection() {
        let n = node("car");
        assert_eq!(n.value_of("class_label"), Value::Str("car".into()));
        assert!(matches!(n.value_of("bbox"), Value::BBox(_)));
        assert_eq!(n.value_of("track_id"), Value::Null);
        assert_eq!(n.value_of("ghost"), Value::Null);
        match n.value_of("score") {
            Value::Float(s) => assert!((s - 0.9).abs() < 1e-5),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn computed_props_shadow_builtins_in_value_of() {
        let mut n = node("car");
        n.props.insert("color".into(), Value::from("red"));
        assert_eq!(n.value_of("color"), Value::from("red"));
        let m = n.prop_map();
        assert!(m.contains_key("color") && m.contains_key("bbox"));
    }

    #[test]
    fn graph_alias_queries() {
        let mut g = FrameGraph::new();
        let a = g.add_node(node("car"));
        let b = g.add_node(node("car"));
        let _p = g.add_node(node("person"));
        assert_eq!(g.alive_of("car"), vec![a, b]);
        g.kill(a);
        assert_eq!(g.alive_of("car"), vec![b]);
        assert_eq!(g.alive_count("person"), 1);
    }

    #[test]
    fn edges_are_searchable() {
        let mut g = FrameGraph::new();
        let a = g.add_node(node("car"));
        let b = g.add_node(node("person"));
        let mut props = BTreeMap::new();
        props.insert("distance".to_owned(), Value::Float(42.0));
        g.add_edge(Edge {
            kind: EdgeKind::Spatial,
            relation: "near".into(),
            from: a,
            to: b,
            props,
        });
        let e = g.edge_between("near", a, b).unwrap();
        assert_eq!(e.props["distance"], Value::Float(42.0));
        assert!(g.edge_between("near", b, a).is_none());
    }

    #[test]
    fn roundtrip_detection() {
        let n = node("car");
        let d = n.as_detection();
        assert_eq!(d.class_label, "car");
        assert_eq!(d.sim_entity, Some(7));
    }
}
