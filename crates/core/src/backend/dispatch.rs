//! The injectable detect boundary.
//!
//! Every detect-stage model invocation goes through a [`DetectDispatch`]:
//! the executor hands the dispatcher a detector and the batch's live
//! frames, and gets per-frame detections back. The default
//! ([`DirectDispatch`]) calls the detector's own batched entry point — one
//! physical invocation per (stream, batch), exactly the pre-existing
//! behavior.
//!
//! The indirection exists for the serving layer: a multi-stream supervisor
//! installs a *shared* dispatcher (`vqpy-serve`'s `ModelBatcher`) that
//! coalesces frames from many concurrent streams into one physical
//! `detect_batch` call and demultiplexes the results back, amortizing the
//! fixed per-invocation dispatch overhead across streams. Because every
//! simulated detector answers deterministically per frame, routing a frame
//! through a larger cross-stream batch never changes its detections — only
//! the charged (and, on an exclusive device, wall-realized) cost.
//!
//! Dispatchers must be [`Send`] + [`Sync`]: the pipelined executor's detect
//! workers share one dispatcher across threads.

use std::sync::Arc;
use vqpy_models::{Clock, Detection, Detector};
use vqpy_video::frame::Frame;

/// Issues detect-stage model invocations on behalf of the executor.
pub trait DetectDispatch: Send + Sync {
    /// Runs `detector` over `frames`, returning one detection list per
    /// frame, in order. Implementations must be result-transparent: the
    /// returned detections must equal `detector.detect_batch(frames, ..)`
    /// regardless of how the physical invocation is organized.
    fn dispatch(
        &self,
        detector: &Arc<dyn Detector>,
        frames: &[&Frame],
        clock: &Clock,
    ) -> Vec<Vec<Detection>>;
}

/// The default boundary: one physical batched invocation per call, issued
/// directly on the calling thread.
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectDispatch;

impl DetectDispatch for DirectDispatch {
    fn dispatch(
        &self,
        detector: &Arc<dyn Detector>,
        frames: &[&Frame],
        clock: &Clock,
    ) -> Vec<Vec<Detection>> {
        detector.detect_batch(frames, clock)
    }
}

/// A process-wide [`DirectDispatch`] for contexts built without a custom
/// boundary (offline execution, tests).
pub fn direct() -> &'static DirectDispatch {
    static DIRECT: DirectDispatch = DirectDispatch;
    &DIRECT
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqpy_models::detectors::SimDetector;
    use vqpy_video::presets;
    use vqpy_video::scene::Scene;
    use vqpy_video::source::{SyntheticVideo, VideoSource};

    #[test]
    fn direct_dispatch_equals_detect_batch() {
        let det: Arc<dyn Detector> =
            Arc::new(SimDetector::general("yolox", &["car"], 30.0, 0.95, 1));
        let v = SyntheticVideo::new(Scene::generate(presets::jackson(), 3, 5.0));
        let frames: Vec<Frame> = (0..4).map(|i| v.frame(i)).collect();
        let refs: Vec<&Frame> = frames.iter().collect();
        let a = DirectDispatch.dispatch(&det, &refs, &Clock::new());
        let b = det.detect_batch(&refs, &Clock::new());
        assert_eq!(a, b);
    }
}
