//! The injectable model-dispatch boundary.
//!
//! Every model-stage invocation the executors issue goes through a
//! [`ModelDispatch`]: the executor hands the dispatcher a model handle and
//! the stage's typed submission — live frames for detect and binary-filter
//! stages, one frame's crops for classify/projection stages — and gets the
//! stage's results back. The default ([`DirectDispatch`]) calls the model's
//! own batched entry point — one physical invocation per (stream, batch)
//! for frame stages and per (stream, frame) for crop stages, exactly the
//! pre-existing behavior.
//!
//! The indirection exists for the serving layer: a multi-stream supervisor
//! installs a *shared* dispatcher (`vqpy-serve`'s `ModelBatcher`) that
//! coalesces submissions from many concurrent streams **per (stage,
//! model)** into one physical `detect_batch` / `predict_batch` /
//! `classify_batch_jobs` call and demultiplexes the results back,
//! amortizing the fixed per-invocation dispatch overhead across streams.
//! Because every simulated model answers deterministically per (frame,
//! entity), routing a submission through a larger cross-stream batch never
//! changes its results — only the charged (and, on an exclusive device,
//! wall-realized) cost.
//!
//! The boundary is **fallible**: every entry point returns a
//! `Result<_, ModelFault>` so a transient model failure (an injected
//! fault, a panicking coalesced batch, a real backend hiccup) surfaces as
//! a typed error instead of a panic. [`RetryDispatch`] layers a
//! [`RetryPolicy`] — bounded retries with exponential backoff charged
//! honestly through the [`Clock`] — over any inner dispatcher; because
//! models answer deterministically, a successful retry returns exactly
//! what the failed attempt would have.
//!
//! Dispatchers must be [`Send`] + [`Sync`]: the pipelined executor's detect
//! workers share one dispatcher across threads, and the sequential tail
//! submits classify traffic through the same handle.

use std::sync::Arc;
use vqpy_models::{Classifier, Clock, Detection, Detector, FrameClassifier, ModelFault, Value};
use vqpy_video::frame::Frame;

/// The model stages whose invocations cross the dispatch boundary. Indexes
/// per-stage accounting (e.g. the serving batcher's coalesce counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelStage {
    /// Object detection over live frames (`detect_batch`).
    Detect,
    /// Frame-level binary filters over live frames (`predict_batch`).
    Predict,
    /// Per-object property models over one frame's crops
    /// (`classify_batch`).
    Classify,
}

impl ModelStage {
    /// All stages, in a stable order usable for indexed storage.
    pub const ALL: [ModelStage; 3] = [
        ModelStage::Detect,
        ModelStage::Predict,
        ModelStage::Classify,
    ];

    /// Stable lowercase name for reports and metrics keys.
    pub fn name(&self) -> &'static str {
        match self {
            ModelStage::Detect => "detect",
            ModelStage::Predict => "predict",
            ModelStage::Classify => "classify",
        }
    }

    /// The stage's position in [`ModelStage::ALL`].
    pub fn index(&self) -> usize {
        *self as usize
    }
}

/// Issues model-stage invocations on behalf of the executor, one typed
/// entry point per stage. Implementations must be result-transparent: each
/// method's `Ok` value must equal the model's own batched entry point on
/// the same submission, regardless of how the physical invocation is
/// organized.
pub trait ModelDispatch: Send + Sync {
    /// Runs `detector` over `frames`, returning one detection list per
    /// frame, in order.
    ///
    /// # Errors
    ///
    /// A [`ModelFault`] when the invocation failed and the dispatcher did
    /// not (or could not) recover it.
    fn detect(
        &self,
        detector: &Arc<dyn Detector>,
        frames: &[&Frame],
        clock: &Clock,
    ) -> Result<Vec<Vec<Detection>>, ModelFault>;

    /// Runs the binary frame classifier over `frames`, returning one
    /// verdict per frame, in order.
    ///
    /// # Errors
    ///
    /// A [`ModelFault`] when the invocation failed unrecoverably.
    fn predict(
        &self,
        model: &Arc<dyn FrameClassifier>,
        frames: &[&Frame],
        clock: &Clock,
    ) -> Result<Vec<bool>, ModelFault>;

    /// Runs the per-object property model over `dets` (crops of `frame`),
    /// returning one value per detection, in order.
    ///
    /// # Errors
    ///
    /// A [`ModelFault`] when the invocation failed unrecoverably.
    fn classify(
        &self,
        model: &Arc<dyn Classifier>,
        frame: &Frame,
        dets: &[Detection],
        clock: &Clock,
    ) -> Result<Vec<Value>, ModelFault>;
}

/// The default boundary: one physical batched invocation per call, issued
/// directly on the calling thread through the models' fallible entry
/// points. Each invocation runs inside a [`vqpy_models::placement_scope`]
/// keyed by (stage, model name) so a multi-device clock can route it.
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectDispatch;

impl ModelDispatch for DirectDispatch {
    fn detect(
        &self,
        detector: &Arc<dyn Detector>,
        frames: &[&Frame],
        clock: &Clock,
    ) -> Result<Vec<Vec<Detection>>, ModelFault> {
        vqpy_models::placement_scope(ModelStage::Detect.index(), &detector.profile().name, || {
            detector.try_detect_batch(frames, clock)
        })
    }

    fn predict(
        &self,
        model: &Arc<dyn FrameClassifier>,
        frames: &[&Frame],
        clock: &Clock,
    ) -> Result<Vec<bool>, ModelFault> {
        vqpy_models::placement_scope(ModelStage::Predict.index(), &model.profile().name, || {
            model.try_predict_batch(frames, clock)
        })
    }

    fn classify(
        &self,
        model: &Arc<dyn Classifier>,
        frame: &Frame,
        dets: &[Detection],
        clock: &Clock,
    ) -> Result<Vec<Value>, ModelFault> {
        vqpy_models::placement_scope(ModelStage::Classify.index(), &model.profile().name, || {
            model.try_classify_batch(frame, dets, clock)
        })
    }
}

/// A process-wide [`DirectDispatch`] for contexts built without a custom
/// boundary (offline execution, tests).
pub fn direct() -> &'static DirectDispatch {
    static DIRECT: DirectDispatch = DirectDispatch;
    &DIRECT
}

/// Charge label under which retry backoff is recorded, so experiments can
/// see exactly how much virtual time fault recovery cost.
pub const RETRY_BACKOFF_LABEL: &str = "retry_backoff";

/// Bounded-retry policy for the dispatch boundary.
///
/// On a [`ModelFault`], the dispatcher waits `backoff_base_ms * 2^attempt`
/// (charged to the [`Clock`] under [`RETRY_BACKOFF_LABEL`], so backoff is
/// real virtual time, not free) and re-issues the invocation, up to
/// `max_retries` times. A `stage_timeout_ms` bounds the *total* backoff a
/// single stage invocation may accumulate: once the budget would be
/// exceeded, the fault is returned even if retries remain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Re-issues after the first failure (0 disables retrying).
    pub max_retries: u32,
    /// Backoff before retry `k` (0-based) is `backoff_base_ms * 2^k`.
    pub backoff_base_ms: f64,
    /// Cap on total backoff per stage invocation, when set.
    pub stage_timeout_ms: Option<f64>,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 2,
            backoff_base_ms: 4.0,
            stage_timeout_ms: Some(250.0),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: faults surface immediately.
    pub fn none() -> Self {
        Self {
            max_retries: 0,
            backoff_base_ms: 0.0,
            stage_timeout_ms: None,
        }
    }

    fn run<T>(
        &self,
        clock: &Clock,
        stage: ModelStage,
        tracer: &vqpy_obs::Tracer,
        mut attempt: impl FnMut() -> Result<T, ModelFault>,
    ) -> Result<T, ModelFault> {
        let mut backoff_spent = 0.0f64;
        let mut last = match attempt() {
            Ok(v) => return Ok(v),
            Err(e) => e,
        };
        for k in 0..self.max_retries {
            let wait = self.backoff_base_ms * (1u64 << k.min(62)) as f64;
            if let Some(budget) = self.stage_timeout_ms {
                if backoff_spent + wait > budget {
                    break;
                }
            }
            if wait > 0.0 {
                let _span = tracer
                    .span("dispatch", RETRY_BACKOFF_LABEL)
                    .arg("stage", stage.name())
                    .arg("attempt", k + 1)
                    .arg("wait_ms", wait);
                clock.charge_labeled(RETRY_BACKOFF_LABEL, wait);
                backoff_spent += wait;
            }
            match attempt() {
                Ok(v) => return Ok(v),
                Err(e) => last = e,
            }
        }
        Err(last)
    }
}

/// Wraps any [`ModelDispatch`] with a [`RetryPolicy`]. The serving
/// supervisor installs this over its shared batcher handle so every
/// stream's stage invocations get bounded, honestly-charged retries.
pub struct RetryDispatch {
    inner: Arc<dyn ModelDispatch>,
    policy: RetryPolicy,
    tracer: vqpy_obs::Tracer,
}

impl RetryDispatch {
    /// Wraps `inner` with `policy`.
    pub fn new(inner: Arc<dyn ModelDispatch>, policy: RetryPolicy) -> Self {
        Self {
            inner,
            policy,
            tracer: vqpy_obs::Tracer::disabled(),
        }
    }

    /// Installs a span tracer: every backoff wait is recorded as a
    /// `retry_backoff` span carrying stage, attempt, and wait attributes.
    pub fn with_tracer(mut self, tracer: vqpy_obs::Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The wrapped dispatcher.
    pub fn inner(&self) -> &Arc<dyn ModelDispatch> {
        &self.inner
    }

    /// The active policy.
    pub fn policy(&self) -> RetryPolicy {
        self.policy
    }
}

impl ModelDispatch for RetryDispatch {
    fn detect(
        &self,
        detector: &Arc<dyn Detector>,
        frames: &[&Frame],
        clock: &Clock,
    ) -> Result<Vec<Vec<Detection>>, ModelFault> {
        self.policy
            .run(clock, ModelStage::Detect, &self.tracer, || {
                self.inner.detect(detector, frames, clock)
            })
    }

    fn predict(
        &self,
        model: &Arc<dyn FrameClassifier>,
        frames: &[&Frame],
        clock: &Clock,
    ) -> Result<Vec<bool>, ModelFault> {
        self.policy
            .run(clock, ModelStage::Predict, &self.tracer, || {
                self.inner.predict(model, frames, clock)
            })
    }

    fn classify(
        &self,
        model: &Arc<dyn Classifier>,
        frame: &Frame,
        dets: &[Detection],
        clock: &Clock,
    ) -> Result<Vec<Value>, ModelFault> {
        self.policy
            .run(clock, ModelStage::Classify, &self.tracer, || {
                self.inner.classify(model, frame, dets, clock)
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqpy_models::detectors::SimDetector;
    use vqpy_models::{FaultInjector, FaultPlan, ModelZoo};
    use vqpy_video::presets;
    use vqpy_video::scene::Scene;
    use vqpy_video::source::{SyntheticVideo, VideoSource};

    #[test]
    fn direct_dispatch_equals_detect_batch() {
        let det: Arc<dyn Detector> =
            Arc::new(SimDetector::general("yolox", &["car"], 30.0, 0.95, 1));
        let v = SyntheticVideo::new(Scene::generate(presets::jackson(), 3, 5.0));
        let frames: Vec<Frame> = (0..4).map(|i| v.frame(i)).collect();
        let refs: Vec<&Frame> = frames.iter().collect();
        let a = DirectDispatch.detect(&det, &refs, &Clock::new()).unwrap();
        let b = det.detect_batch(&refs, &Clock::new());
        assert_eq!(a, b);
    }

    #[test]
    fn direct_dispatch_equals_model_entry_points_on_every_stage() {
        let zoo = ModelZoo::standard();
        let v = SyntheticVideo::new(Scene::generate(presets::jackson(), 11, 5.0));
        let frames: Vec<Frame> = (0..3).map(|i| v.frame(i)).collect();
        let refs: Vec<&Frame> = frames.iter().collect();

        let filter = zoo.frame_classifier("no_red_on_road").unwrap();
        assert_eq!(
            DirectDispatch
                .predict(&filter, &refs, &Clock::new())
                .unwrap(),
            filter.predict_batch(&refs, &Clock::new()),
        );

        let det = zoo.detector("yolox").unwrap();
        let dets = det.detect(&frames[0], &Clock::new());
        let clf = zoo.classifier("direction_model").unwrap();
        assert_eq!(
            DirectDispatch
                .classify(&clf, &frames[0], &dets, &Clock::new())
                .unwrap(),
            clf.classify_batch(&frames[0], &dets, &Clock::new()),
        );
    }

    #[test]
    fn stage_taxonomy_is_stable() {
        for (i, s) in ModelStage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(
            ModelStage::ALL.map(|s| s.name()),
            ["detect", "predict", "classify"]
        );
    }

    fn faulty_detector(n: u64) -> (FaultInjector, Arc<dyn Detector>) {
        let inj = FaultInjector::new(FaultPlan::every_nth(3, n));
        let det = inj.wrap_detector(Arc::new(SimDetector::general(
            "yolox",
            &["car"],
            30.0,
            0.95,
            1,
        )));
        (inj, det)
    }

    #[test]
    fn retry_recovers_transient_faults_with_identical_results() {
        // Every 1st invocation of each pair fails; the retry succeeds and
        // must return exactly what a clean call returns.
        let (inj, det) = faulty_detector(2);
        let clean: Arc<dyn Detector> =
            Arc::new(SimDetector::general("yolox", &["car"], 30.0, 0.95, 1));
        let v = SyntheticVideo::new(Scene::generate(presets::jackson(), 3, 5.0));
        let frames: Vec<Frame> = (0..4).map(|i| v.frame(i)).collect();
        let refs: Vec<&Frame> = frames.iter().collect();

        let retry = RetryDispatch::new(Arc::new(DirectDispatch), RetryPolicy::default());
        let clock = Clock::new();
        // Invocation #1 succeeds, #2 fails and is retried as #3.
        let first = retry.detect(&det, &refs, &clock).unwrap();
        let second = retry.detect(&det, &refs, &clock).unwrap();
        let want = clean.detect_batch(&refs, &Clock::new());
        assert_eq!(first, want);
        assert_eq!(second, want);
        assert_eq!(inj.injected_faults(), 1);
        // Backoff was charged honestly: one retry at base backoff.
        let stat = clock.stat(RETRY_BACKOFF_LABEL).expect("backoff charged");
        assert_eq!(stat.invocations, 1);
        assert_eq!(stat.units, RetryPolicy::default().backoff_base_ms);
    }

    #[test]
    fn retry_gives_up_after_budget() {
        // Every invocation fails; the fault must surface after exactly
        // max_retries + 1 attempts.
        let inj = FaultInjector::new(FaultPlan::every_nth(3, 1));
        let det = inj.wrap_detector(Arc::new(SimDetector::general(
            "yolox",
            &["car"],
            30.0,
            0.95,
            1,
        )));
        let v = SyntheticVideo::new(Scene::generate(presets::jackson(), 3, 2.0));
        let frame = v.frame(0);
        let retry = RetryDispatch::new(
            Arc::new(DirectDispatch),
            RetryPolicy {
                max_retries: 3,
                backoff_base_ms: 1.0,
                stage_timeout_ms: None,
            },
        );
        let err = retry.detect(&det, &[&frame], &Clock::new()).unwrap_err();
        assert!(err.message.contains("injected"));
        assert_eq!(inj.injected_faults(), 4); // initial + 3 retries
    }

    #[test]
    fn stage_timeout_bounds_total_backoff() {
        let inj = FaultInjector::new(FaultPlan::every_nth(3, 1));
        let det = inj.wrap_detector(Arc::new(SimDetector::general(
            "yolox",
            &["car"],
            30.0,
            0.95,
            1,
        )));
        let v = SyntheticVideo::new(Scene::generate(presets::jackson(), 3, 2.0));
        let frame = v.frame(0);
        let clock = Clock::new();
        let retry = RetryDispatch::new(
            Arc::new(DirectDispatch),
            RetryPolicy {
                max_retries: 10,
                backoff_base_ms: 4.0,
                // Budget admits 4 + 8 = 12ms of backoff; the third retry
                // (16ms) would exceed it.
                stage_timeout_ms: Some(15.0),
            },
        );
        assert!(retry.detect(&det, &[&frame], &clock).is_err());
        assert_eq!(inj.injected_faults(), 3); // initial + 2 affordable retries
        let stat = clock.stat(RETRY_BACKOFF_LABEL).unwrap();
        assert_eq!(stat.units, 12.0);
    }
}
