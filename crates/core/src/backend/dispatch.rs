//! The injectable model-dispatch boundary.
//!
//! Every model-stage invocation the executors issue goes through a
//! [`ModelDispatch`]: the executor hands the dispatcher a model handle and
//! the stage's typed submission — live frames for detect and binary-filter
//! stages, one frame's crops for classify/projection stages — and gets the
//! stage's results back. The default ([`DirectDispatch`]) calls the model's
//! own batched entry point — one physical invocation per (stream, batch)
//! for frame stages and per (stream, frame) for crop stages, exactly the
//! pre-existing behavior.
//!
//! The indirection exists for the serving layer: a multi-stream supervisor
//! installs a *shared* dispatcher (`vqpy-serve`'s `ModelBatcher`) that
//! coalesces submissions from many concurrent streams **per (stage,
//! model)** into one physical `detect_batch` / `predict_batch` /
//! `classify_batch_jobs` call and demultiplexes the results back,
//! amortizing the fixed per-invocation dispatch overhead across streams.
//! Because every simulated model answers deterministically per (frame,
//! entity), routing a submission through a larger cross-stream batch never
//! changes its results — only the charged (and, on an exclusive device,
//! wall-realized) cost.
//!
//! Dispatchers must be [`Send`] + [`Sync`]: the pipelined executor's detect
//! workers share one dispatcher across threads, and the sequential tail
//! submits classify traffic through the same handle.

use std::sync::Arc;
use vqpy_models::{Classifier, Clock, Detection, Detector, FrameClassifier, Value};
use vqpy_video::frame::Frame;

/// The model stages whose invocations cross the dispatch boundary. Indexes
/// per-stage accounting (e.g. the serving batcher's coalesce counters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelStage {
    /// Object detection over live frames (`detect_batch`).
    Detect,
    /// Frame-level binary filters over live frames (`predict_batch`).
    Predict,
    /// Per-object property models over one frame's crops
    /// (`classify_batch`).
    Classify,
}

impl ModelStage {
    /// All stages, in a stable order usable for indexed storage.
    pub const ALL: [ModelStage; 3] = [
        ModelStage::Detect,
        ModelStage::Predict,
        ModelStage::Classify,
    ];

    /// Stable lowercase name for reports and metrics keys.
    pub fn name(&self) -> &'static str {
        match self {
            ModelStage::Detect => "detect",
            ModelStage::Predict => "predict",
            ModelStage::Classify => "classify",
        }
    }

    /// The stage's position in [`ModelStage::ALL`].
    pub fn index(&self) -> usize {
        *self as usize
    }
}

/// Issues model-stage invocations on behalf of the executor, one typed
/// entry point per stage. Implementations must be result-transparent: each
/// method's return value must equal the model's own batched entry point on
/// the same submission, regardless of how the physical invocation is
/// organized.
pub trait ModelDispatch: Send + Sync {
    /// Runs `detector` over `frames`, returning one detection list per
    /// frame, in order.
    fn detect(
        &self,
        detector: &Arc<dyn Detector>,
        frames: &[&Frame],
        clock: &Clock,
    ) -> Vec<Vec<Detection>>;

    /// Runs the binary frame classifier over `frames`, returning one
    /// verdict per frame, in order.
    fn predict(
        &self,
        model: &Arc<dyn FrameClassifier>,
        frames: &[&Frame],
        clock: &Clock,
    ) -> Vec<bool>;

    /// Runs the per-object property model over `dets` (crops of `frame`),
    /// returning one value per detection, in order.
    fn classify(
        &self,
        model: &Arc<dyn Classifier>,
        frame: &Frame,
        dets: &[Detection],
        clock: &Clock,
    ) -> Vec<Value>;
}

/// The default boundary: one physical batched invocation per call, issued
/// directly on the calling thread.
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectDispatch;

impl ModelDispatch for DirectDispatch {
    fn detect(
        &self,
        detector: &Arc<dyn Detector>,
        frames: &[&Frame],
        clock: &Clock,
    ) -> Vec<Vec<Detection>> {
        detector.detect_batch(frames, clock)
    }

    fn predict(
        &self,
        model: &Arc<dyn FrameClassifier>,
        frames: &[&Frame],
        clock: &Clock,
    ) -> Vec<bool> {
        model.predict_batch(frames, clock)
    }

    fn classify(
        &self,
        model: &Arc<dyn Classifier>,
        frame: &Frame,
        dets: &[Detection],
        clock: &Clock,
    ) -> Vec<Value> {
        model.classify_batch(frame, dets, clock)
    }
}

/// A process-wide [`DirectDispatch`] for contexts built without a custom
/// boundary (offline execution, tests).
pub fn direct() -> &'static DirectDispatch {
    static DIRECT: DirectDispatch = DirectDispatch;
    &DIRECT
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqpy_models::detectors::SimDetector;
    use vqpy_models::ModelZoo;
    use vqpy_video::presets;
    use vqpy_video::scene::Scene;
    use vqpy_video::source::{SyntheticVideo, VideoSource};

    #[test]
    fn direct_dispatch_equals_detect_batch() {
        let det: Arc<dyn Detector> =
            Arc::new(SimDetector::general("yolox", &["car"], 30.0, 0.95, 1));
        let v = SyntheticVideo::new(Scene::generate(presets::jackson(), 3, 5.0));
        let frames: Vec<Frame> = (0..4).map(|i| v.frame(i)).collect();
        let refs: Vec<&Frame> = frames.iter().collect();
        let a = DirectDispatch.detect(&det, &refs, &Clock::new());
        let b = det.detect_batch(&refs, &Clock::new());
        assert_eq!(a, b);
    }

    #[test]
    fn direct_dispatch_equals_model_entry_points_on_every_stage() {
        let zoo = ModelZoo::standard();
        let v = SyntheticVideo::new(Scene::generate(presets::jackson(), 11, 5.0));
        let frames: Vec<Frame> = (0..3).map(|i| v.frame(i)).collect();
        let refs: Vec<&Frame> = frames.iter().collect();

        let filter = zoo.frame_classifier("no_red_on_road").unwrap();
        assert_eq!(
            DirectDispatch.predict(&filter, &refs, &Clock::new()),
            filter.predict_batch(&refs, &Clock::new()),
        );

        let det = zoo.detector("yolox").unwrap();
        let dets = det.detect(&frames[0], &Clock::new());
        let clf = zoo.classifier("direction_model").unwrap();
        assert_eq!(
            DirectDispatch.classify(&clf, &frames[0], &dets, &Clock::new()),
            clf.classify_batch(&frames[0], &dets, &Clock::new()),
        );
    }

    #[test]
    fn stage_taxonomy_is_stable() {
        for (i, s) in ModelStage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        assert_eq!(
            ModelStage::ALL.map(|s| s.name()),
            ["detect", "predict", "classify"]
        );
    }
}
