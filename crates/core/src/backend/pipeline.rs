//! The staged pipeline executor ([`ExecMode::Pipelined`]).
//!
//! Real video-analytics engines overlap decode, detection, and downstream
//! relational work instead of interpreting one frame at a time. This
//! executor splits the operator chain into five stages connected by
//! bounded channels:
//!
//! ```text
//!  decode workers ─▶ frame filters ─▶ detect workers ─▶ track/prep ─▶ enrich workers ─▶ tail
//!   (parallel,        (single thread,   (parallel,       (single thread,  (parallel,      (caller
//!    unordered)        frame order)      unordered)       frame order)     unordered)      thread,
//!                                                                                          frame order)
//! ```
//!
//! - **Decode** fans out across `workers` threads: each claims the next
//!   batch index, renders its frames, and charges decode cost. Decoding is
//!   pure, so order does not matter here.
//! - **Frame filters** (differencing, binary classifiers) are stateful
//!   across frames, so one thread reorders batches by sequence number and
//!   applies them in frame order.
//! - **Detect** fans out again: detection is deterministic per frame, so
//!   `workers` threads each run their own detect operators on whole
//!   batches.
//! - **Track/prep** runs the ordered pre-enrich tail segment — the tracker
//!   plus every stateful or reuse-cache-touching projection
//!   ([`crate::backend::plan::PlanDag::partition_tail`]) — on one thread in
//!   frame order: it owns the real reuse cache, so hit/eviction order is
//!   byte-identical to sequential execution.
//! - **Enrich** fans the hoisted per-object projections and filters (e.g.
//!   non-memoizable classifier properties) across `workers` threads, each
//!   owning its operator chain as a reusable workspace. These ops are
//!   order-free and cache-free by the planner's hoisting rule, so batches
//!   process unordered; while enrich chews on batch *b*, prep is already
//!   sequencing batch *b+1* — the stage that used to dominate the tail
//!   overlaps with everything else.
//! - **Tail** (relation projections, joins) runs on the calling thread,
//!   reordering batches back into frame order for result delivery.
//!
//! Slots recycle through a return channel, so the steady state allocates no
//! new frame workspaces. Cancellation is cooperative: every blocking send /
//! receive polls a shared flag, so an error in any stage (or plain
//! completion) winds down all threads without deadlock. Results are
//! byte-identical to [`ExecMode::Sequential`]; see the parity tests.
//!
//! Since the serving refactor this module exposes a *segment* runner: all
//! cross-frame operator state lives in a caller-owned [`StageOps`], so a
//! long-lived stream can alternate pipelined segments with plan recompiles
//! (query attach/detach) without losing tracker or filter state.
//!
//! [`ExecMode::Pipelined`]: crate::backend::exec::ExecMode::Pipelined
//! [`ExecMode::Sequential`]: crate::backend::exec::ExecMode::Sequential

use crate::backend::exec::{ExecConfig, ExecMetrics, ResultSink, StageOps};
use crate::backend::ops::{ExecCtx, FrameSlot};
use crate::backend::plan::PlanDag;
use crate::backend::reuse::ReuseCache;
use crate::error::{panic_message, Result, VqpyError};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::ops::Range;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::time::{Duration, Instant};
use vqpy_models::{Clock, ModelZoo};
use vqpy_video::source::VideoSource;

/// A batch of slots tagged with its sequence number.
type Batch = (u64, Vec<FrameSlot>);

const POLL: Duration = Duration::from_millis(1);
const RECV_POLL: Duration = Duration::from_millis(20);

/// Sends cooperatively: polls so a cancelled pipeline never deadlocks on a
/// full bounded channel. Returns `false` when cancelled or disconnected.
fn send_coop<T>(tx: &SyncSender<T>, mut msg: T, cancel: &AtomicBool) -> bool {
    loop {
        if cancel.load(Ordering::Relaxed) {
            return false;
        }
        match tx.try_send(msg) {
            Ok(()) => return true,
            Err(TrySendError::Full(m)) => {
                msg = m;
                std::thread::sleep(POLL);
            }
            Err(TrySendError::Disconnected(_)) => return false,
        }
    }
}

/// Receives cooperatively from a shared receiver. Returns `None` when
/// cancelled or when all senders disconnected.
fn recv_coop<T>(rx: &Mutex<Receiver<T>>, cancel: &AtomicBool) -> Option<T> {
    loop {
        if cancel.load(Ordering::Relaxed) {
            return None;
        }
        match rx.lock().recv_timeout(RECV_POLL) {
            Ok(v) => return Some(v),
            Err(std::sync::mpsc::RecvTimeoutError::Timeout) => continue,
            Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => return None,
        }
    }
}

/// Reorders sequence-tagged batches back into sequence order.
struct Reorder {
    pending: BTreeMap<u64, Vec<FrameSlot>>,
    next: u64,
}

impl Reorder {
    fn new() -> Self {
        Self {
            pending: BTreeMap::new(),
            next: 0,
        }
    }

    fn push(&mut self, batch: Batch) {
        self.pending.insert(batch.0, batch.1);
    }

    fn pop_ready(&mut self) -> Option<Batch> {
        if self.pending.contains_key(&self.next) {
            let b = self.pending.remove(&self.next).expect("checked");
            let seq = self.next;
            self.next += 1;
            return Some((seq, b));
        }
        None
    }
}

/// Per-stage busy-time accounting (nanoseconds, summed across workers).
#[derive(Default)]
struct StageNanos {
    decode: AtomicU64,
    frame_filters: AtomicU64,
    detect: AtomicU64,
    track: AtomicU64,
    enrich: AtomicU64,
    tail: AtomicU64,
}

fn timed<R>(bucket: &AtomicU64, f: impl FnOnce() -> R) -> R {
    let t = Instant::now();
    let r = f();
    bucket.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
    r
}

fn set_error(slot: &Mutex<Option<VqpyError>>, cancel: &AtomicBool, e: VqpyError) {
    let mut guard = slot.lock();
    if guard.is_none() {
        *guard = Some(e);
    }
    cancel.store(true, Ordering::Relaxed);
}

/// Runs a stage body, converting a panic into a typed
/// [`VqpyError::StagePanic`]. Stage threads must not unwind through the
/// scope: a panicking scoped thread would re-raise at scope exit *after*
/// the other stages wind down on channel disconnects — but a thread parked
/// on a channel whose peer is still alive would never observe the
/// disconnect, so containment-plus-`set_error` (which flips `cancel`) is
/// the only ordering that is deadlock-free for every stage.
fn contain<R>(stage: &'static str, f: impl FnOnce() -> Result<R>) -> Result<R> {
    catch_unwind(AssertUnwindSafe(f)).unwrap_or_else(|p| {
        Err(VqpyError::StagePanic {
            stage,
            message: panic_message(&*p),
        })
    })
}

/// Runs one contiguous frame segment through the staged pipeline. Called by
/// [`crate::backend::exec::run_segment`] for [`Pipelined`] mode; operator
/// state, the reuse cache, and metrics persist in the caller across calls.
///
/// The worker count is `ops.detects.len()` (fixed at instantiation).
///
/// [`Pipelined`]: crate::backend::exec::ExecMode::Pipelined
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_segment_pipelined(
    plan: &PlanDag,
    source: &dyn VideoSource,
    zoo: &ModelZoo,
    clock: &Clock,
    config: &ExecConfig,
    range: Range<u64>,
    ops: &mut StageOps,
    reuse: &mut ReuseCache,
    metrics: &mut ExecMetrics,
    sink: &mut dyn ResultSink,
) -> Result<()> {
    let workers = ops.detects.len().max(1);
    let dispatch = std::sync::Arc::clone(&ops.dispatch);
    let tracer = ops.tracer.clone();
    let filter_ops = &mut ops.filters;
    let detect_ops_per_worker = &mut ops.detects;
    let prep_ops = &mut ops.prep;
    let enrich_ops_per_worker = &mut ops.enrichs;
    let tail_ops = &mut ops.tail;

    let batch = config.batch_size.max(1) as u64;
    let num_batches = (range.end - range.start).div_ceil(batch);
    let joins = plan.joins.len();

    // ---- channels ---------------------------------------------------------
    let depth = workers * 2 + 2;
    let (decoded_tx, decoded_rx) = sync_channel::<Batch>(depth);
    let (filtered_tx, filtered_rx) = sync_channel::<Batch>(depth);
    let (detected_tx, detected_rx) = sync_channel::<Batch>(depth);
    let (prepped_tx, prepped_rx) = sync_channel::<Batch>(depth);
    let (enriched_tx, enriched_rx) = sync_channel::<Batch>(depth);
    let (recycle_tx, recycle_rx) = std::sync::mpsc::channel::<Vec<FrameSlot>>();
    let decoded_rx = Mutex::new(decoded_rx);
    let filtered_rx = Mutex::new(filtered_rx);
    let detected_rx = Mutex::new(detected_rx);
    let prepped_rx = Mutex::new(prepped_rx);
    let recycle_rx = Mutex::new(recycle_rx);

    let cancel = AtomicBool::new(false);
    let error: Mutex<Option<VqpyError>> = Mutex::new(None);
    let next_batch = AtomicU64::new(0);
    let stages = StageNanos::default();
    let frames_processed = AtomicU64::new(0);
    let decode_failures = AtomicU64::new(0);

    std::thread::scope(|scope| {
        // ---- stage 1a: decode workers (parallel, unordered) --------------
        for _ in 0..workers {
            let decoded_tx = decoded_tx.clone();
            let (cancel, stages, next_batch, recycle_rx, error, decode_failures) = (
                &cancel,
                &stages,
                &next_batch,
                &recycle_rx,
                &error,
                &decode_failures,
            );
            let tracer = &tracer;
            scope.spawn(move || loop {
                if cancel.load(Ordering::Relaxed) {
                    break;
                }
                let b = next_batch.fetch_add(1, Ordering::Relaxed);
                if b >= num_batches {
                    break;
                }
                let lo = range.start + b * batch;
                let hi = (lo + batch).min(range.end);
                let mut slots = recycle_rx.lock().try_recv().unwrap_or_default();
                let outcome = contain("decode", || {
                    timed(&stages.decode, || {
                        let mut span = tracer
                            .span("exec", "decode")
                            .arg("start", lo)
                            .arg("end", hi);
                        // An undecodable frame is skipped with a counter;
                        // the batch ships with its surviving frames only.
                        let mut n = 0usize;
                        for f in lo..hi {
                            clock.charge_labeled(
                                "video_decode",
                                vqpy_models::zoo::COST_VIDEO_DECODE,
                            );
                            let frame = match source.try_frame(f) {
                                Ok(frame) => frame,
                                Err(_) => {
                                    decode_failures.fetch_add(1, Ordering::Relaxed);
                                    continue;
                                }
                            };
                            if n < slots.len() {
                                slots[n].reset(frame);
                            } else {
                                slots.push(FrameSlot::new(frame));
                            }
                            slots[n].prepare_joins(joins);
                            n += 1;
                        }
                        slots.truncate(n);
                        span.add_arg("decoded", n);
                    });
                    Ok(())
                });
                if let Err(e) = outcome {
                    set_error(error, cancel, e);
                    break;
                }
                if !send_coop(&decoded_tx, (b, slots), cancel) {
                    break;
                }
            });
        }
        drop(decoded_tx);

        // ---- stage 1b: frame filters (single thread, frame order) --------
        {
            let filtered_tx = filtered_tx.clone();
            let (cancel, stages, error, decoded_rx, frames_processed) =
                (&cancel, &stages, &error, &decoded_rx, &frames_processed);
            let dispatch = std::sync::Arc::clone(&dispatch);
            let tracer = &tracer;
            let filter_ops = &mut *filter_ops;
            scope.spawn(move || {
                let mut reorder = Reorder::new();
                let mut reuse = crate::backend::reuse::ReuseCache::new(); // unused by filters
                'outer: while let Some(b) = recv_coop(decoded_rx, cancel) {
                    reorder.push(b);
                    while let Some((seq, mut slots)) = reorder.pop_ready() {
                        let outcome = contain("frame_filters", || {
                            timed(&stages.frame_filters, || {
                                let _span = tracer
                                    .span("exec", "frame_filter")
                                    .arg("batch", seq)
                                    .arg("frames", slots.len());
                                let mut ctx = ExecCtx {
                                    dispatch: &*dispatch,
                                    tracer,
                                    zoo,
                                    clock,
                                    fps: source.fps(),
                                    reuse: &mut reuse,
                                    enable_reuse: config.enable_intrinsic_reuse,
                                };
                                for op in filter_ops.iter_mut() {
                                    op.process_batch(&mut slots, &mut ctx)?;
                                }
                                Ok::<(), VqpyError>(())
                            })
                        });
                        if let Err(e) = outcome {
                            set_error(error, cancel, e);
                            break 'outer;
                        }
                        frames_processed.fetch_add(
                            slots.iter().filter(|s| s.alive).count() as u64,
                            Ordering::Relaxed,
                        );
                        if !send_coop(&filtered_tx, (seq, slots), cancel) {
                            break 'outer;
                        }
                    }
                }
            });
        }
        drop(filtered_tx);

        // ---- stage 2: detect workers (parallel, unordered) ---------------
        for detect_ops in detect_ops_per_worker.iter_mut() {
            let detected_tx = detected_tx.clone();
            let (cancel, stages, error, filtered_rx) = (&cancel, &stages, &error, &filtered_rx);
            let dispatch = std::sync::Arc::clone(&dispatch);
            let tracer = &tracer;
            scope.spawn(move || {
                let mut reuse = crate::backend::reuse::ReuseCache::new(); // unused by detectors
                while let Some((seq, mut slots)) = recv_coop(filtered_rx, cancel) {
                    let outcome = contain("detect", || {
                        timed(&stages.detect, || {
                            let _span = tracer
                                .span("exec", "detect")
                                .arg("batch", seq)
                                .arg("frames", slots.len());
                            let mut ctx = ExecCtx {
                                dispatch: &*dispatch,
                                tracer,
                                zoo,
                                clock,
                                fps: source.fps(),
                                reuse: &mut reuse,
                                enable_reuse: config.enable_intrinsic_reuse,
                            };
                            for op in detect_ops.iter_mut() {
                                op.process_batch(&mut slots, &mut ctx)?;
                            }
                            Ok::<(), VqpyError>(())
                        })
                    });
                    if let Err(e) = outcome {
                        set_error(error, cancel, e);
                        break;
                    }
                    if !send_coop(&detected_tx, (seq, slots), cancel) {
                        break;
                    }
                }
            });
        }
        drop(detected_tx);

        // ---- stage 3: track/prep (single thread, frame order) ------------
        // Owns the stream's *real* reuse cache for the whole segment: the
        // tracker, stateful windows, and intrinsic projections must see
        // frames in order for results — and the cache's hit/eviction
        // sequence — to stay byte-identical to sequential execution.
        {
            let prepped_tx = prepped_tx.clone();
            let (cancel, stages, error, detected_rx) = (&cancel, &stages, &error, &detected_rx);
            let dispatch = std::sync::Arc::clone(&dispatch);
            let tracer = &tracer;
            let prep_ops = &mut *prep_ops;
            let reuse = &mut *reuse;
            scope.spawn(move || {
                let mut reorder = Reorder::new();
                'outer: while let Some(b) = recv_coop(detected_rx, cancel) {
                    reorder.push(b);
                    while let Some((seq, mut slots)) = reorder.pop_ready() {
                        let outcome = contain("track", || {
                            timed(&stages.track, || {
                                let _span = tracer
                                    .span("exec", "track")
                                    .arg("batch", seq)
                                    .arg("frames", slots.len());
                                let mut ctx = ExecCtx {
                                    dispatch: &*dispatch,
                                    tracer,
                                    zoo,
                                    clock,
                                    fps: source.fps(),
                                    reuse: &mut *reuse,
                                    enable_reuse: config.enable_intrinsic_reuse,
                                };
                                for op in prep_ops.iter_mut() {
                                    op.process_batch(&mut slots, &mut ctx)?;
                                }
                                Ok::<(), VqpyError>(())
                            })
                        });
                        if let Err(e) = outcome {
                            set_error(error, cancel, e);
                            break 'outer;
                        }
                        if !send_coop(&prepped_tx, (seq, slots), cancel) {
                            break 'outer;
                        }
                    }
                }
            });
        }
        drop(prepped_tx);

        // ---- stage 4: enrich workers (parallel, unordered) ---------------
        // Each worker owns one hoisted operator chain as a reusable
        // workspace. The planner guarantees these ops are order-free and
        // cache-free, so workers take batches as they come; the dummy
        // reuse cache is never consulted.
        for enrich_ops in enrich_ops_per_worker.iter_mut() {
            let enriched_tx = enriched_tx.clone();
            let (cancel, stages, error, prepped_rx) = (&cancel, &stages, &error, &prepped_rx);
            let dispatch = std::sync::Arc::clone(&dispatch);
            let tracer = &tracer;
            scope.spawn(move || {
                let mut reuse = crate::backend::reuse::ReuseCache::new(); // unused by enrich ops
                while let Some((seq, mut slots)) = recv_coop(prepped_rx, cancel) {
                    let outcome = contain("enrich", || {
                        timed(&stages.enrich, || {
                            let _span = tracer
                                .span("exec", "enrich")
                                .arg("batch", seq)
                                .arg("frames", slots.len());
                            let mut ctx = ExecCtx {
                                dispatch: &*dispatch,
                                tracer,
                                zoo,
                                clock,
                                fps: source.fps(),
                                reuse: &mut reuse,
                                enable_reuse: config.enable_intrinsic_reuse,
                            };
                            for op in enrich_ops.iter_mut() {
                                op.process_batch(&mut slots, &mut ctx)?;
                            }
                            Ok::<(), VqpyError>(())
                        })
                    });
                    if let Err(e) = outcome {
                        set_error(error, cancel, e);
                        break;
                    }
                    if !send_coop(&enriched_tx, (seq, slots), cancel) {
                        break;
                    }
                }
            });
        }
        drop(enriched_tx);

        // ---- stage 5: tail (this thread, frame order) --------------------
        // Joins and relation projections never touch the reuse cache (it
        // lives with the prep thread for the segment), so the tail runs
        // with a dummy.
        let mut tail_reuse = crate::backend::reuse::ReuseCache::new();
        let mut reorder = Reorder::new();
        let tail_outcome: Result<()> = contain("tail", || {
            loop {
                let msg = match enriched_rx.recv_timeout(RECV_POLL) {
                    Ok(m) => m,
                    Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
                        if cancel.load(Ordering::Relaxed) {
                            break;
                        }
                        continue;
                    }
                    Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => break,
                };
                reorder.push(msg);
                while let Some((seq, mut slots)) = reorder.pop_ready() {
                    metrics.frames_total += slots.len() as u64;
                    timed(&stages.tail, || {
                        let _span = tracer
                            .span("exec", "tail")
                            .arg("batch", seq)
                            .arg("frames", slots.len());
                        let mut ctx = ExecCtx {
                            dispatch: &*dispatch,
                            tracer: &tracer,
                            zoo,
                            clock,
                            fps: source.fps(),
                            reuse: &mut tail_reuse,
                            enable_reuse: config.enable_intrinsic_reuse,
                        };
                        for op in tail_ops.iter_mut() {
                            op.process_batch(&mut slots, &mut ctx)?;
                        }
                        Ok::<(), VqpyError>(())
                    })?;
                    for slot in &slots {
                        sink.on_frame(plan, slot)?;
                    }
                    let _ = recycle_tx.send(slots); // decode may have exited
                }
            }
            Ok(())
        });
        if let Err(e) = tail_outcome {
            set_error(&error, &cancel, e);
        }
        // Unblock any worker still parked on a full channel.
        cancel.store(true, Ordering::Relaxed);
        drop(enriched_rx);
    });

    if let Some(e) = error.into_inner() {
        return Err(e);
    }

    metrics.frames_processed += frames_processed.load(Ordering::Relaxed);
    metrics.decode_failures += decode_failures.load(Ordering::Relaxed);
    let ns = |a: &AtomicU64| a.load(Ordering::Relaxed) as f64 / 1e6;
    metrics.add_stage_wall("decode", ns(&stages.decode));
    metrics.add_stage_wall("frame_filters", ns(&stages.frame_filters));
    metrics.add_stage_wall("detect", ns(&stages.detect));
    metrics.add_stage_wall("track", ns(&stages.track));
    metrics.add_stage_wall("enrich", ns(&stages.enrich));
    metrics.add_stage_wall("tail", ns(&stages.tail));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::exec::{execute_plan, ExecMode};
    use crate::backend::plan::{build_plan, PlanOptions};
    use crate::frontend::library;
    use crate::frontend::predicate::Pred;
    use crate::frontend::query::Query;
    use std::sync::Arc;
    use vqpy_models::ModelZoo;
    use vqpy_video::presets;
    use vqpy_video::scene::Scene;
    use vqpy_video::source::SyntheticVideo;

    fn red_car_query() -> Arc<Query> {
        Query::builder("RedCar")
            .vobj("car", library::vehicle_schema_intrinsic())
            .frame_constraint(Pred::gt("car", "score", 0.5) & Pred::eq("car", "color", "red"))
            .frame_output(&[("car", "track_id")])
            .build()
            .unwrap()
    }

    #[test]
    fn pipelined_matches_sequential_results_and_costs() {
        let zoo = ModelZoo::standard();
        let v = SyntheticVideo::new(Scene::generate(presets::jackson(), 404, 15.0));
        let plan = build_plan(&[red_car_query()], &zoo, &PlanOptions::vqpy_default()).unwrap();

        let c_seq = vqpy_models::Clock::new();
        let seq = execute_plan(&plan, &v, &zoo, &c_seq, &ExecConfig::default()).unwrap();

        let c_pipe = vqpy_models::Clock::new();
        let pipe = execute_plan(
            &plan,
            &v,
            &zoo,
            &c_pipe,
            &ExecConfig {
                exec_mode: ExecMode::Pipelined { workers: 3 },
                ..ExecConfig::default()
            },
        )
        .unwrap();

        assert_eq!(seq[0].hit_frames(), pipe[0].hit_frames());
        assert_eq!(seq[0].metrics.frames_total, pipe[0].metrics.frames_total);
        assert_eq!(
            seq[0].metrics.frames_processed,
            pipe[0].metrics.frames_processed
        );
        assert_eq!(seq[0].metrics.reuse, pipe[0].metrics.reuse);
        // Virtual cost is order-independent, so both modes charge the same.
        assert!(
            (c_seq.virtual_ms() - c_pipe.virtual_ms()).abs() < 1e-6,
            "seq {} vs pipe {}",
            c_seq.virtual_ms(),
            c_pipe.virtual_ms()
        );
    }

    #[test]
    fn pipelined_reports_stage_walltimes() {
        let zoo = ModelZoo::standard();
        let v = SyntheticVideo::new(Scene::generate(presets::jackson(), 7, 5.0));
        let plan = build_plan(&[red_car_query()], &zoo, &PlanOptions::vqpy_default()).unwrap();
        let clock = vqpy_models::Clock::new();
        let results = execute_plan(
            &plan,
            &v,
            &zoo,
            &clock,
            &ExecConfig {
                exec_mode: ExecMode::Pipelined { workers: 2 },
                ..ExecConfig::default()
            },
        )
        .unwrap();
        let stages: Vec<&str> = results[0]
            .metrics
            .stage_wall_ms
            .iter()
            .map(|(n, _)| n.as_str())
            .collect();
        assert_eq!(
            stages,
            vec![
                "decode",
                "frame_filters",
                "detect",
                "track",
                "enrich",
                "tail",
                "total"
            ]
        );
        assert!(results[0]
            .metrics
            .stage_wall_ms
            .iter()
            .all(|(_, ms)| *ms >= 0.0));
    }

    #[test]
    fn pipelined_surfaces_errors() {
        // A plan referencing a model that exists at plan time but not at
        // execution time (different zoo) must error cleanly, not hang.
        let zoo = ModelZoo::standard();
        let plan = build_plan(&[red_car_query()], &zoo, &PlanOptions::vqpy_default()).unwrap();
        let empty_zoo = ModelZoo::new();
        let v = SyntheticVideo::new(Scene::generate(presets::jackson(), 7, 2.0));
        let clock = vqpy_models::Clock::new();
        let err = execute_plan(
            &plan,
            &v,
            &empty_zoo,
            &clock,
            &ExecConfig {
                exec_mode: ExecMode::Pipelined { workers: 2 },
                ..ExecConfig::default()
            },
        );
        assert!(err.is_err());
    }
}
