//! Object-level computation reuse (§4.2).
//!
//! Intrinsic properties (color, plate, ...) never change for a given
//! object, so once computed for a track they are memoized here, keyed by
//! `(alias, track id, property)`. The projector consults the cache before
//! invoking any model; the ~10x gains of §5.2's stateless-property
//! comparison come from these hits.

use std::collections::HashMap;
use vqpy_models::Value;
use vqpy_tracker::TrackId;

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReuseStats {
    pub hits: u64,
    pub misses: u64,
}

impl ReuseStats {
    /// Hit rate in `[0, 1]`; 0 when empty.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Memoized intrinsic property values per tracked object.
#[derive(Debug, Default)]
pub struct ReuseCache {
    values: HashMap<(String, TrackId, String), Value>,
    stats: ReuseStats,
}

impl ReuseCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a memoized value, recording a hit or miss.
    pub fn lookup(&mut self, alias: &str, track: TrackId, prop: &str) -> Option<Value> {
        match self
            .values
            .get(&(alias.to_owned(), track, prop.to_owned()))
        {
            Some(v) => {
                self.stats.hits += 1;
                Some(v.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Memoizes a computed intrinsic value.
    pub fn store(&mut self, alias: &str, track: TrackId, prop: &str, value: Value) {
        self.values
            .insert((alias.to_owned(), track, prop.to_owned()), value);
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> ReuseStats {
        self.stats
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Drops all entries and statistics.
    pub fn clear(&mut self) {
        self.values.clear();
        self.stats = ReuseStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_miss_then_hit() {
        let mut c = ReuseCache::new();
        assert!(c.lookup("car", 1, "color").is_none());
        c.store("car", 1, "color", Value::from("red"));
        assert_eq!(c.lookup("car", 1, "color"), Some(Value::from("red")));
        assert_eq!(c.stats(), ReuseStats { hits: 1, misses: 1 });
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn keys_are_fully_qualified() {
        let mut c = ReuseCache::new();
        c.store("car", 1, "color", Value::from("red"));
        assert!(c.lookup("truck", 1, "color").is_none());
        assert!(c.lookup("car", 2, "color").is_none());
        assert!(c.lookup("car", 1, "plate").is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut c = ReuseCache::new();
        c.store("car", 1, "color", Value::from("red"));
        c.lookup("car", 1, "color");
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), ReuseStats::default());
    }
}
