//! Object-level computation reuse (§4.2).
//!
//! Intrinsic properties (color, plate, ...) never change for a given
//! object, so once computed for a track they are memoized here, keyed by
//! `(alias, track id, property)`. The projector consults the cache before
//! invoking any model; the ~10x gains of §5.2's stateless-property
//! comparison come from these hits.
//!
//! The key uses interned [`Sym`]s (see [`crate::backend::symbols`]), so a
//! probe is a `Copy` tuple hash — the hit path performs **zero heap
//! allocations**. Entries live in a slab-backed intrusive LRU list: an
//! optional capacity bound evicts the least-recently-used track property
//! so unboundedly long videos cannot grow memory without limit.

use crate::backend::symbols::Sym;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;
use vqpy_models::Value;
use vqpy_tracker::TrackId;

/// A durable backing tier behind the in-memory cache.
///
/// The serving layer installs one backed by the persistent frame store
/// (`vqpy-store`): in-memory misses fall through to
/// [`ReuseTier::load`], and every memoized value is written through via
/// [`ReuseTier::save`]. Keys use *names* rather than interned [`Sym`]s —
/// symbols are per-process and not durable. Tier methods must never block
/// for long (the hit path of every projection runs through them) and must
/// tolerate concurrent calls.
pub trait ReuseTier: Send + Sync + fmt::Debug {
    /// Fetches a previously saved intrinsic value, if the tier still has
    /// it.
    fn load(&self, alias: &str, track: TrackId, prop: &str) -> Option<Value>;
    /// Persists one intrinsic value.
    fn save(&self, alias: &str, track: TrackId, prop: &str, value: &Value);
}

/// Cache statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReuseStats {
    pub hits: u64,
    pub misses: u64,
    /// Entries dropped by the LRU capacity bound.
    pub evictions: u64,
    /// In-memory misses answered by the durable tier (a subset of
    /// `misses`: every tier hit was first counted as an in-memory miss).
    pub tier_hits: u64,
}

impl ReuseStats {
    /// Hit rate in `[0, 1]`; 0 when empty.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Cache key: `(alias, track, property)`, all `Copy`.
type Key = (Sym, TrackId, Sym);

const NIL: usize = usize::MAX;

/// One slab entry, doubly linked into the LRU list.
#[derive(Debug)]
struct Entry {
    key: Key,
    value: Value,
    prev: usize,
    next: usize,
}

/// Memoized intrinsic property values per tracked object, with an optional
/// LRU capacity bound.
#[derive(Debug, Default)]
pub struct ReuseCache {
    index: HashMap<Key, usize>,
    slab: Vec<Entry>,
    free: Vec<usize>,
    /// Most-recently-used end of the list.
    head: Option<usize>,
    /// Least-recently-used end of the list.
    tail: Option<usize>,
    capacity: Option<usize>,
    stats: ReuseStats,
    /// Durable backing tier; `None` keeps the cache purely in-memory.
    tier: Option<Arc<dyn ReuseTier>>,
}

impl ReuseCache {
    /// An unbounded cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache evicting least-recently-used entries beyond `capacity`.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "reuse cache capacity must be positive");
        Self {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        match prev {
            NIL => self.head = (next != NIL).then_some(next),
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = (prev != NIL).then_some(prev),
            n => self.slab[n].prev = prev,
        }
        self.slab[i].prev = NIL;
        self.slab[i].next = NIL;
    }

    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head.unwrap_or(NIL);
        if let Some(h) = self.head {
            self.slab[h].prev = i;
        }
        self.head = Some(i);
        if self.tail.is_none() {
            self.tail = Some(i);
        }
    }

    /// Looks up a memoized value, recording a hit or miss. Hits move the
    /// entry to the front of the LRU list. This path allocates nothing:
    /// the key is a `Copy` tuple and the value is returned by reference.
    pub fn lookup(&mut self, alias: Sym, track: TrackId, prop: Sym) -> Option<&Value> {
        match self.index.get(&(alias, track, prop)).copied() {
            Some(i) => {
                self.stats.hits += 1;
                if self.head != Some(i) {
                    self.unlink(i);
                    self.push_front(i);
                }
                Some(&self.slab[i].value)
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Memoizes a computed intrinsic value, evicting the least-recently-used
    /// entry when the capacity bound is exceeded.
    pub fn store(&mut self, alias: Sym, track: TrackId, prop: Sym, value: Value) {
        let key = (alias, track, prop);
        if let Some(&i) = self.index.get(&key) {
            self.slab[i].value = value;
            if self.head != Some(i) {
                self.unlink(i);
                self.push_front(i);
            }
            return;
        }
        if let Some(cap) = self.capacity {
            while self.index.len() >= cap {
                let lru = self.tail.expect("non-empty cache has a tail");
                self.unlink(lru);
                self.index.remove(&self.slab[lru].key);
                self.slab[lru].value = Value::Null;
                self.free.push(lru);
                self.stats.evictions += 1;
            }
        }
        let i = match self.free.pop() {
            Some(i) => {
                self.slab[i] = Entry {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                };
                i
            }
            None => {
                self.slab.push(Entry {
                    key,
                    value,
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.index.insert(key, i);
        self.push_front(i);
    }

    /// Installs a durable backing tier. In-memory misses on the *named*
    /// paths fall through to it, and named stores write through; the
    /// symbol-only [`ReuseCache::lookup`]/[`ReuseCache::store`] paths are
    /// unaffected.
    pub fn set_tier(&mut self, tier: Arc<dyn ReuseTier>) {
        self.tier = Some(tier);
    }

    /// Whether a durable tier is installed.
    pub fn has_tier(&self) -> bool {
        self.tier.is_some()
    }

    /// [`ReuseCache::lookup`] with a durable-tier fallback: an in-memory
    /// miss consults the tier under the entry's *names*; a tier hit is
    /// promoted into the in-memory cache (so subsequent probes stay
    /// allocation-free) and counted in [`ReuseStats::tier_hits`].
    pub fn lookup_named(
        &mut self,
        alias: Sym,
        track: TrackId,
        prop: Sym,
        alias_name: &str,
        prop_name: &str,
    ) -> Option<Value> {
        if let Some(v) = self.lookup(alias, track, prop) {
            return Some(v.clone());
        }
        let value = self
            .tier
            .as_ref()
            .and_then(|t| t.load(alias_name, track, prop_name))?;
        self.stats.tier_hits += 1;
        self.store(alias, track, prop, value.clone());
        Some(value)
    }

    /// [`ReuseCache::store`] with durable write-through: the value is
    /// memoized in memory and, when a tier is installed, saved under the
    /// entry's names so it survives process restarts and LRU eviction.
    pub fn store_named(
        &mut self,
        alias: Sym,
        track: TrackId,
        prop: Sym,
        value: Value,
        alias_name: &str,
        prop_name: &str,
    ) {
        if let Some(t) = &self.tier {
            t.save(alias_name, track, prop_name, &value);
        }
        self.store(alias, track, prop, value);
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> ReuseStats {
        self.stats
    }

    /// Number of memoized entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Drops all entries and statistics.
    pub fn clear(&mut self) {
        self.index.clear();
        self.slab.clear();
        self.free.clear();
        self.head = None;
        self.tail = None;
        self.stats = ReuseStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CAR: Sym = Sym(0);
    const TRUCK: Sym = Sym(1);
    const COLOR: Sym = Sym(2);
    const PLATE: Sym = Sym(3);

    #[test]
    fn lookup_miss_then_hit() {
        let mut c = ReuseCache::new();
        assert!(c.lookup(CAR, 1, COLOR).is_none());
        c.store(CAR, 1, COLOR, Value::from("red"));
        assert_eq!(c.lookup(CAR, 1, COLOR).cloned(), Some(Value::from("red")));
        assert_eq!(
            c.stats(),
            ReuseStats {
                hits: 1,
                misses: 1,
                ..Default::default()
            }
        );
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn hit_rate_handles_empty_and_full() {
        assert_eq!(ReuseStats::default().hit_rate(), 0.0);
        let all_hits = ReuseStats {
            hits: 10,
            ..Default::default()
        };
        assert!((all_hits.hit_rate() - 1.0).abs() < 1e-12);
        let mixed = ReuseStats {
            hits: 3,
            misses: 9,
            evictions: 2,
            ..Default::default()
        };
        assert!((mixed.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn keys_are_fully_qualified() {
        let mut c = ReuseCache::new();
        c.store(CAR, 1, COLOR, Value::from("red"));
        assert!(c.lookup(TRUCK, 1, COLOR).is_none());
        assert!(c.lookup(CAR, 2, COLOR).is_none());
        assert!(c.lookup(CAR, 1, PLATE).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut c = ReuseCache::new();
        c.store(CAR, 1, COLOR, Value::from("red"));
        c.lookup(CAR, 1, COLOR);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.stats(), ReuseStats::default());
    }

    #[test]
    fn capacity_evicts_least_recently_used() {
        let mut c = ReuseCache::with_capacity(2);
        c.store(CAR, 1, COLOR, Value::from("red"));
        c.store(CAR, 2, COLOR, Value::from("blue"));
        // Touch track 1 so track 2 becomes the LRU.
        assert!(c.lookup(CAR, 1, COLOR).is_some());
        c.store(CAR, 3, COLOR, Value::from("green"));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
        assert!(c.lookup(CAR, 2, COLOR).is_none(), "LRU entry evicted");
        assert!(c.lookup(CAR, 1, COLOR).is_some());
        assert!(c.lookup(CAR, 3, COLOR).is_some());
    }

    #[test]
    fn eviction_churn_reuses_slab_slots() {
        let mut c = ReuseCache::with_capacity(4);
        for t in 0..100u64 {
            c.store(CAR, t, COLOR, Value::Int(t as i64));
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.stats().evictions, 96);
        // The slab never grew past capacity + nothing leaked.
        assert!(c.slab.len() <= 5, "slab len {}", c.slab.len());
        for t in 96..100u64 {
            assert_eq!(c.lookup(CAR, t, COLOR).cloned(), Some(Value::Int(t as i64)));
        }
    }

    #[derive(Debug, Default)]
    struct MapTier(parking_lot::Mutex<HashMap<(String, TrackId, String), Value>>);

    impl ReuseTier for MapTier {
        fn load(&self, alias: &str, track: TrackId, prop: &str) -> Option<Value> {
            self.0
                .lock()
                .get(&(alias.to_owned(), track, prop.to_owned()))
                .cloned()
        }
        fn save(&self, alias: &str, track: TrackId, prop: &str, value: &Value) {
            self.0
                .lock()
                .insert((alias.to_owned(), track, prop.to_owned()), value.clone());
        }
    }

    #[test]
    fn tier_read_through_and_write_through() {
        let tier = Arc::new(MapTier::default());
        let mut c = ReuseCache::with_capacity(1);
        c.set_tier(Arc::clone(&tier) as Arc<dyn ReuseTier>);

        // Write-through: a named store lands in the tier.
        c.store_named(CAR, 1, COLOR, Value::from("red"), "car", "color");
        assert_eq!(tier.load("car", 1, "color"), Some(Value::from("red")));

        // Capacity-evict the entry, then read it back through the tier.
        c.store_named(CAR, 2, COLOR, Value::from("blue"), "car", "color");
        assert_eq!(c.stats().evictions, 1);
        let v = c.lookup_named(CAR, 1, COLOR, "car", "color");
        assert_eq!(v, Some(Value::from("red")));
        assert_eq!(c.stats().tier_hits, 1);
        // The tier hit was counted as an in-memory miss first.
        assert_eq!(c.stats().misses, 1);

        // Promotion: the value is back in memory (hit, no new tier hit).
        assert_eq!(c.lookup(CAR, 1, COLOR).cloned(), Some(Value::from("red")));
        assert_eq!(c.stats().tier_hits, 1);

        // Unknown keys miss both layers.
        assert_eq!(c.lookup_named(TRUCK, 9, PLATE, "truck", "plate"), None);
    }

    #[test]
    fn store_overwrite_updates_in_place() {
        let mut c = ReuseCache::with_capacity(2);
        c.store(CAR, 1, COLOR, Value::from("red"));
        c.store(CAR, 1, COLOR, Value::from("black"));
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 0);
        assert_eq!(c.lookup(CAR, 1, COLOR).cloned(), Some(Value::from("black")));
    }
}
