//! DAG optimizations (§4.3): predicate pull-up, operator fusion, and
//! alternative-plan enumeration from inheritance-registered extensions.

use crate::backend::plan::{build_plan, OpSpec, PlanDag, PlanOptions, SpecializedChoice};
use crate::error::Result;
use crate::extend::ExtensionRegistry;
use crate::frontend::predicate::Pred;
use crate::frontend::query::Query;
use std::collections::BTreeSet;
use std::sync::Arc;
use vqpy_models::ModelZoo;

/// Predicate pull-up: moves each filter to the earliest position where all
/// properties it references are available, and floats frame-level filters
/// (diff / binary) to the front of the plan. This is the §4.3 optimization
/// that recovers lazy evaluation from an eagerly-built plan.
pub fn predicate_pullup(plan: &mut PlanDag) {
    // Float frame filters to the very front, preserving their order.
    plan.ops.sort_by_key(|op| match op {
        OpSpec::DiffFilter { .. } | OpSpec::BinaryFilter { .. } => 0,
        _ => 1,
    });

    // Extract VObj filters; property availability comes only from
    // Detect/Track/Project ops, so each filter's earliest legal position is
    // independent of the other filters and one pass suffices (a fixpoint
    // loop here could ping-pong two filters contending for the same slot).
    let mut filters: Vec<OpSpec> = Vec::new();
    let mut base: Vec<OpSpec> = Vec::new();
    for op in plan.ops.drain(..) {
        match op {
            OpSpec::Filter { .. } => filters.push(op),
            other => base.push(other),
        }
    }

    for f in filters {
        let OpSpec::Filter { alias, pred, .. } = &f else {
            unreachable!()
        };
        let needed: BTreeSet<String> = pred
            .referenced_props()
            .into_iter()
            .map(|p| p.prop)
            .collect();
        let mut available: BTreeSet<String> = ["bbox", "score", "class_label", "center"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let mut detect_seen = false;
        let mut insert_at = base.len();
        for (j, op) in base.iter().enumerate() {
            match op {
                OpSpec::Detect { aliases, .. } if aliases.iter().any(|(a, _)| a == alias) => {
                    detect_seen = true;
                }
                OpSpec::Track { alias: a } if a == alias => {
                    available.insert("track_id".into());
                }
                OpSpec::Project { alias: a, prop }
                | OpSpec::FusedProjectFilter { alias: a, prop, .. }
                    if a == alias =>
                {
                    available.insert(prop.clone());
                }
                _ => {}
            }
            if detect_seen && needed.iter().all(|p| available.contains(p)) {
                insert_at = j + 1;
                break;
            }
        }
        // Keep the original relative order of filters landing on the same
        // spot by skipping past previously-inserted filters.
        while insert_at < base.len() && matches!(base[insert_at], OpSpec::Filter { .. }) {
            insert_at += 1;
        }
        base.insert(insert_at, f);
    }
    plan.ops = base;
}

/// Operator fusion: merges each `Project` immediately followed by a
/// `Filter` on the same alias into one fused operator, eliminating a
/// pipeline pass and the intermediate node scan (§4.3's operator fusion).
pub fn fuse_operators(plan: &mut PlanDag) {
    let mut out: Vec<OpSpec> = Vec::with_capacity(plan.ops.len());
    let mut i = 0;
    while i < plan.ops.len() {
        let fused = match (&plan.ops[i], plan.ops.get(i + 1)) {
            (
                OpSpec::Project { alias, prop },
                Some(OpSpec::Filter {
                    alias: fa,
                    pred,
                    required,
                }),
            ) if alias == fa => Some(OpSpec::FusedProjectFilter {
                alias: alias.clone(),
                prop: prop.clone(),
                pred: pred.clone(),
                required: *required,
            }),
            _ => None,
        };
        match fused {
            Some(op) => {
                out.push(op);
                i += 2;
            }
            None => {
                out.push(plan.ops[i].clone());
                i += 1;
            }
        }
    }
    plan.ops = out;
}

/// Applies the intra-plan optimization passes requested by `opts`.
pub fn apply_passes(plan: &mut PlanDag, opts: &PlanOptions) {
    if opts.pullup {
        predicate_pullup(plan);
    }
    if opts.fuse {
        fuse_operators(plan);
    }
}

/// Enumerates candidate plans for `queries`: the baseline plus variants
/// using inheritance-registered extensions (specialized NNs, binary
/// classifiers, differencing filters). The first element is always the
/// most-general baseline, which the canary profiler uses as the accuracy
/// reference.
pub fn enumerate_plans(
    queries: &[Arc<Query>],
    zoo: &ModelZoo,
    extensions: &ExtensionRegistry,
    base: &PlanOptions,
) -> Result<Vec<PlanDag>> {
    let mut variants: Vec<PlanOptions> = Vec::new();
    let mut baseline = base.clone();
    baseline.label = "baseline".into();
    variants.push(baseline);

    // Applicable extensions, resolved through each alias's inheritance chain.
    let mut specialized: Vec<(String, SpecializedChoice)> = Vec::new();
    let mut binary: Vec<String> = Vec::new();
    for q in queries {
        for v in q.vobjs() {
            let chain = |name: &str| v.schema.inherits_from(name);
            for s in extensions.specialized_for(chain) {
                // Only applicable when the query actually constrains the
                // implemented conjunct and does not output the property.
                let conjunct = Pred::eq(&v.alias, &s.prop, s.value.clone());
                let has = q
                    .frame_constraint()
                    .conjuncts()
                    .iter()
                    .any(|c| c.to_string() == conjunct.to_string());
                let outputs_prop = q.frame_output().iter().any(|p| p.prop == s.prop);
                if has && !outputs_prop {
                    specialized.push((
                        v.alias.clone(),
                        SpecializedChoice {
                            detector: s.detector.clone(),
                            prop: s.prop.clone(),
                            value: s.value.clone(),
                        },
                    ));
                }
            }
            for b in extensions.binary_for(chain) {
                if !binary.contains(&b.model) {
                    binary.push(b.model.clone());
                }
            }
        }
    }
    let frame_filters = extensions.frame_filters();

    // Independent toggles: binary filter on/off x diff filter on/off x
    // specialized on/off, minus the all-off case (that is the baseline).
    let spec_states: Vec<Option<&(String, SpecializedChoice)>> = {
        let mut v: Vec<Option<&(String, SpecializedChoice)>> = vec![None];
        v.extend(specialized.iter().map(Some));
        v
    };
    for spec in &spec_states {
        for use_binary in [false, true] {
            for use_diff in [false, true] {
                if spec.is_none() && !use_binary && !use_diff {
                    continue; // baseline already present
                }
                if use_binary && binary.is_empty() {
                    continue;
                }
                if use_diff && frame_filters.is_empty() {
                    continue;
                }
                let mut o = base.clone();
                let mut label_parts = Vec::new();
                if let Some((alias, choice)) = spec {
                    o.specialized.insert(alias.clone(), choice.clone());
                    label_parts.push(format!("specialized({})", choice.detector));
                }
                if use_binary {
                    o.binary_filters = binary.clone();
                    label_parts.push(format!("binary({})", binary.join(",")));
                }
                if use_diff {
                    o.diff_filter = Some(frame_filters[0].threshold);
                    label_parts.push("diff".into());
                }
                o.label = format!("+{}", label_parts.join("+"));
                variants.push(o);
            }
        }
    }

    let mut plans = Vec::with_capacity(variants.len());
    for opts in &variants {
        let mut plan = build_plan(queries, zoo, opts)?;
        apply_passes(&mut plan, opts);
        plans.push(plan);
    }
    Ok(plans)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extend::{BinaryFilterReg, FrameFilterReg, SpecializedNnReg};
    use crate::frontend::library;
    use crate::frontend::predicate::Pred;
    use vqpy_models::Value;

    fn red_car_query() -> Arc<Query> {
        Query::builder("RedCar")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.6) & Pred::eq("car", "color", "red"))
            .build()
            .unwrap()
    }

    #[test]
    fn pullup_recovers_lazy_shape_from_eager_plan() {
        let zoo = ModelZoo::standard();
        let mut opts = PlanOptions::vqpy_default();
        opts.eager_filters = true;
        opts.fuse = false;
        opts.pullup = false;
        let mut plan = build_plan(&[red_car_query()], &zoo, &opts).unwrap();
        let desc_before = plan.describe();
        // Eager: score filter after color projection.
        let score_before = desc_before.find("car.score >").unwrap();
        let color_before = desc_before.find("project(car.color)").unwrap();
        assert!(score_before > color_before, "{desc_before}");

        predicate_pullup(&mut plan);
        let desc_after = plan.describe();
        let score_after = desc_after.find("car.score >").unwrap();
        let color_after = desc_after.find("project(car.color)").unwrap();
        assert!(score_after < color_after, "{desc_after}");
    }

    #[test]
    fn fusion_merges_adjacent_project_filter() {
        let zoo = ModelZoo::standard();
        let mut opts = PlanOptions::vqpy_default();
        opts.fuse = false;
        opts.pullup = false;
        let mut plan = build_plan(&[red_car_query()], &zoo, &opts).unwrap();
        assert!(plan.describe().contains("project(car.color)"));
        fuse_operators(&mut plan);
        let desc = plan.describe();
        assert!(
            desc.contains("project+filter(car.color"),
            "fused op expected:\n{desc}"
        );
        assert!(!desc.contains("project(car.color)\nfilter"), "{desc}");
    }

    #[test]
    fn enumeration_includes_extension_variants() {
        let zoo = ModelZoo::standard();
        let ext = ExtensionRegistry::new();
        ext.register_specialized_nn(SpecializedNnReg {
            schema: "Vehicle".into(),
            detector: "red_car_detector".into(),
            prop: "color".into(),
            value: Value::from("red"),
        });
        ext.register_binary_filter(BinaryFilterReg {
            schema: "Vehicle".into(),
            model: "no_red_on_road".into(),
        });
        ext.register_frame_filter(FrameFilterReg { threshold: 0.4 });
        let plans =
            enumerate_plans(&[red_car_query()], &zoo, &ext, &PlanOptions::vqpy_default()).unwrap();
        assert!(plans.len() >= 6, "got {} plans", plans.len());
        assert_eq!(plans[0].label, "baseline");
        assert!(plans.iter().any(|p| p.label.contains("specialized")));
        assert!(plans.iter().any(|p| p.label.contains("binary")));
        assert!(plans.iter().any(|p| p.label.contains("diff")));
    }

    #[test]
    fn enumeration_without_extensions_is_baseline_only() {
        let zoo = ModelZoo::standard();
        let ext = ExtensionRegistry::new();
        let plans =
            enumerate_plans(&[red_car_query()], &zoo, &ext, &PlanOptions::vqpy_default()).unwrap();
        assert_eq!(plans.len(), 1);
    }

    #[test]
    fn specialized_not_applied_when_query_outputs_property() {
        let zoo = ModelZoo::standard();
        let ext = ExtensionRegistry::new();
        ext.register_specialized_nn(SpecializedNnReg {
            schema: "Vehicle".into(),
            detector: "red_car_detector".into(),
            prop: "color".into(),
            value: Value::from("red"),
        });
        let q = Query::builder("RedCarWithColorOut")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::eq("car", "color", "red"))
            .frame_output(&[("car", "color")])
            .build()
            .unwrap();
        let plans = enumerate_plans(&[q], &zoo, &ext, &PlanOptions::vqpy_default()).unwrap();
        assert!(
            plans.iter().all(|p| !p.label.contains("specialized")),
            "specialized path must be skipped when color is an output"
        );
    }
}
