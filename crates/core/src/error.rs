//! Error types for query construction, planning, and execution.

use std::fmt;
use vqpy_models::{DecodeError, LookupModelError, ModelFault, ValueKind};

/// Errors surfaced by the VQPy frontend and backend.
#[derive(Debug)]
pub enum VqpyError {
    /// A property name could not be resolved on a VObj schema (including
    /// its inheritance chain).
    UnknownProperty { schema: String, property: String },
    /// A query referenced an alias it never declared.
    UnknownAlias(String),
    /// A relation name was referenced but not declared.
    UnknownRelation(String),
    /// A declared relation has no property of the referenced name
    /// (anywhere in the relation's inheritance chain).
    UnknownRelationProperty { relation: String, property: String },
    /// A typed `Prop<T>` handle was requested with a Rust type that cannot
    /// decode the property's declared value kind.
    PropertyTypeMismatch {
        /// The schema the property resolves on.
        schema: String,
        /// The property name.
        property: String,
        /// The requested Rust type.
        requested: &'static str,
        /// The kind the schema declares for the property.
        declared: ValueKind,
    },
    /// An extension registration supplied a literal whose kind contradicts
    /// the target property's declared kind.
    ExtensionKindMismatch {
        /// The schema the registration targets.
        schema: String,
        /// The property the registration filters on.
        property: String,
        /// The kind the schema declares for the property.
        declared: ValueKind,
        /// The kind of the supplied literal.
        literal: ValueKind,
    },
    /// Decoding a result row into a typed value failed.
    Decode(DecodeError),
    /// Property dependencies form a cycle.
    CyclicDependency { schema: String, property: String },
    /// A model lookup failed.
    Model(LookupModelError),
    /// A model invocation failed at the dispatch boundary and was not
    /// recovered by the configured retry policy.
    ModelFault(ModelFault),
    /// An executor stage thread panicked mid-segment; the segment was
    /// abandoned. The serving layer's restart policy treats this the same
    /// as a caught caller-thread panic.
    StagePanic {
        /// The stage whose worker panicked ("decode", "filter", "detect").
        stage: &'static str,
        /// The panic payload, stringified.
        message: String,
    },
    /// A higher-order query composition violates Rules 1-3 (§3).
    Compose(ComposeError),
    /// A VObj schema that must detect objects has no detector anywhere in
    /// its inheritance chain.
    MissingDetector(String),
    /// The planner could not produce any plan meeting the accuracy target.
    NoFeasiblePlan { target: f32, best: f32 },
    /// Invalid query construction (message explains what).
    InvalidQuery(String),
}

/// Violations of the higher-order composition rules.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ComposeError {
    /// Rule 1: `SpatialQuery` takes in only basic queries.
    SpatialNeedsBasic,
    /// Rule 2: `DurationQuery` takes in basic queries or `SpatialQuery`s.
    DurationNeedsBasicOrSpatial,
    /// A window or duration of zero frames is meaningless.
    EmptyWindow,
}

impl fmt::Display for ComposeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ComposeError::SpatialNeedsBasic => {
                write!(f, "rule 1: SpatialQuery takes in only basic queries")
            }
            ComposeError::DurationNeedsBasicOrSpatial => write!(
                f,
                "rule 2: DurationQuery takes in basic queries or SpatialQueries"
            ),
            ComposeError::EmptyWindow => write!(f, "window must span at least one frame"),
        }
    }
}

impl std::error::Error for ComposeError {}

impl fmt::Display for VqpyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VqpyError::UnknownProperty { schema, property } => {
                write!(
                    f,
                    "no property `{property}` on VObj `{schema}` or its ancestors"
                )
            }
            VqpyError::UnknownAlias(a) => write!(f, "query references undeclared alias `{a}`"),
            VqpyError::UnknownRelation(r) => {
                write!(f, "query references undeclared relation `{r}`")
            }
            VqpyError::UnknownRelationProperty { relation, property } => {
                write!(
                    f,
                    "no property `{property}` on relation `{relation}` or its ancestors"
                )
            }
            VqpyError::PropertyTypeMismatch {
                schema,
                property,
                requested,
                declared,
            } => write!(
                f,
                "property `{schema}.{property}` is declared `{declared}`, \
                 which cannot decode as `{requested}`"
            ),
            VqpyError::ExtensionKindMismatch {
                schema,
                property,
                declared,
                literal,
            } => write!(
                f,
                "extension on `{schema}.{property}` supplies a `{literal}` \
                 literal but the property is declared `{declared}`"
            ),
            VqpyError::Decode(e) => write!(f, "{e}"),
            VqpyError::CyclicDependency { schema, property } => {
                write!(
                    f,
                    "cyclic property dependency through `{schema}.{property}`"
                )
            }
            VqpyError::Model(e) => write!(f, "{e}"),
            VqpyError::ModelFault(e) => write!(f, "{e}"),
            VqpyError::StagePanic { stage, message } => {
                write!(f, "{stage} stage worker panicked: {message}")
            }
            VqpyError::Compose(e) => write!(f, "{e}"),
            VqpyError::MissingDetector(s) => {
                write!(f, "VObj `{s}` has no detector in its inheritance chain")
            }
            VqpyError::NoFeasiblePlan { target, best } => write!(
                f,
                "no candidate plan meets accuracy target {target} (best was {best})"
            ),
            VqpyError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for VqpyError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VqpyError::Model(e) => Some(e),
            VqpyError::ModelFault(e) => Some(e),
            VqpyError::Compose(e) => Some(e),
            VqpyError::Decode(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LookupModelError> for VqpyError {
    fn from(e: LookupModelError) -> Self {
        VqpyError::Model(e)
    }
}

impl From<DecodeError> for VqpyError {
    fn from(e: DecodeError) -> Self {
        VqpyError::Decode(e)
    }
}

impl From<ComposeError> for VqpyError {
    fn from(e: ComposeError) -> Self {
        VqpyError::Compose(e)
    }
}

impl From<ModelFault> for VqpyError {
    fn from(e: ModelFault) -> Self {
        VqpyError::ModelFault(e)
    }
}

/// Stringifies a caught panic payload (the `Box<dyn Any>` from
/// `catch_unwind`/`JoinHandle::join`) for typed fault reporting. Panics
/// raised by `panic!("...")` carry `&str` or `String`; anything else is
/// reported generically.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Convenience result alias.
pub type Result<T, E = VqpyError> = std::result::Result<T, E>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = VqpyError::UnknownProperty {
            schema: "Vehicle".into(),
            property: "wings".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("Vehicle") && msg.contains("wings"));
        assert!(ComposeError::SpatialNeedsBasic
            .to_string()
            .contains("rule 1"));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VqpyError>();
    }
}
