//! The top-level session: plan, optimize, execute, cache.
//!
//! A [`VqpySession`] owns the model zoo, the extension registry, a plan
//! cache ("this plan can be saved for future queries on similar datasets",
//! §4.3), and a materialized result cache (query-level computation reuse,
//! §4.2). It executes basic queries, shared multi-query pipelines
//! (the VQPy-Opt configuration of §5.3), and composed query expressions.

use crate::backend::exec::{execute_plan, ExecConfig, QueryResult};
use crate::backend::optimize::enumerate_plans;
use crate::backend::plan::{build_plan, PlanDag, PlanOptions};
use crate::backend::profile::{profile_and_choose, PlanProfile};
use crate::error::Result;
use crate::extend::ExtensionRegistry;
use crate::frontend::compose::{duration_filter, temporal_join, QueryExpr};
use crate::frontend::query::Query;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use vqpy_models::{Clock, ModelZoo};
use vqpy_video::source::VideoSource;

/// Session-level configuration.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    pub exec: ExecConfig,
    /// F1 target (vs. the reference plan) for canary plan selection.
    pub accuracy_target: f32,
    /// Canary length in seconds for plan profiling.
    pub canary_seconds: f64,
    /// Enumerate and profile alternative plans when extensions are
    /// registered. When false, always run the baseline plan.
    pub auto_optimize: bool,
    /// Serve repeated queries on the same video from the materialized
    /// result cache (query-level computation reuse, §4.2).
    pub enable_result_cache: bool,
    /// Plan construction knobs (ablation benches override these).
    pub plan: PlanOptions,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            exec: ExecConfig::default(),
            accuracy_target: 0.9,
            canary_seconds: 12.0,
            auto_optimize: true,
            enable_result_cache: true,
            plan: PlanOptions::vqpy_default(),
        }
    }
}

impl SessionConfig {
    /// Default configuration with pipelined execution: decode, detection,
    /// and the relational tail overlap on dedicated threads, with `workers`
    /// threads fanning out the decode and detect stages. Query results are
    /// identical to the sequential default.
    pub fn pipelined(workers: usize) -> Self {
        Self {
            exec: ExecConfig {
                exec_mode: crate::backend::exec::ExecMode::Pipelined { workers },
                ..ExecConfig::default()
            },
            ..Self::default()
        }
    }
}

/// The result of executing a composed [`QueryExpr`].
#[derive(Debug, Clone)]
pub struct ComposedResult {
    /// Frames on which the composed event holds. For temporal compositions
    /// these are the completion frames of the second event.
    pub frames: Vec<u64>,
    /// For temporal compositions, the matched `(first, second)` frame pairs.
    pub pairs: Vec<(u64, u64)>,
    /// Whether the composed event occurred at all (the video constraint).
    pub satisfied: bool,
}

/// An executing VQPy instance.
pub struct VqpySession {
    zoo: Arc<ModelZoo>,
    extensions: ExtensionRegistry,
    config: SessionConfig,
    clock: Arc<Clock>,
    plan_cache: Mutex<HashMap<String, PlanDag>>,
    result_cache: Mutex<HashMap<(u64, String), Arc<QueryResult>>>,
    last_profiles: Mutex<Vec<PlanProfile>>,
}

impl VqpySession {
    /// Creates a session over a model zoo with default configuration.
    pub fn new(zoo: Arc<ModelZoo>) -> Self {
        Self::with_config(zoo, SessionConfig::default())
    }

    /// Creates a session with explicit configuration.
    pub fn with_config(zoo: Arc<ModelZoo>, config: SessionConfig) -> Self {
        Self::with_clock(zoo, config, Arc::new(Clock::new()))
    }

    /// Creates a session charging execution cost to an explicit clock.
    /// Serving deployments pass a [`vqpy_models::ClockMode::Latency`] clock
    /// so model cost is realized as wall latency on the stream threads.
    pub fn with_clock(zoo: Arc<ModelZoo>, config: SessionConfig, clock: Arc<Clock>) -> Self {
        Self {
            zoo,
            extensions: ExtensionRegistry::new(),
            config,
            clock,
            plan_cache: Mutex::new(HashMap::new()),
            result_cache: Mutex::new(HashMap::new()),
            last_profiles: Mutex::new(Vec::new()),
        }
    }

    /// The session's virtual clock (execution cost accumulates here).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Shared handle to the session clock, for long-lived serving threads
    /// (the `vqpy-serve` `StreamServer` charges stream execution here).
    pub fn clock_handle(&self) -> Arc<Clock> {
        Arc::clone(&self.clock)
    }

    /// The model zoo.
    pub fn zoo(&self) -> &Arc<ModelZoo> {
        &self.zoo
    }

    /// The extension registry (Figure 11/12 registration surface).
    pub fn extensions(&self) -> &ExtensionRegistry {
        &self.extensions
    }

    /// Session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Plan profiles from the most recent canary selection.
    pub fn last_profiles(&self) -> Vec<PlanProfile> {
        self.last_profiles.lock().clone()
    }

    /// Clears materialized results and cached plans.
    pub fn clear_caches(&self) {
        self.plan_cache.lock().clear();
        self.result_cache.lock().clear();
    }

    fn cache_key(q: &Query) -> String {
        format!(
            "{}|{}|{:?}",
            q.name(),
            q.frame_constraint(),
            q.video_output()
        )
    }

    /// Plans `queries` as one shared pipeline, consulting the plan cache
    /// and (when extensions are registered) canary profiling.
    pub fn plan_for(&self, queries: &[Arc<Query>], video: &dyn VideoSource) -> Result<PlanDag> {
        let key: String = queries
            .iter()
            .map(|q| Self::cache_key(q))
            .collect::<Vec<_>>()
            .join("&");
        if let Some(plan) = self.plan_cache.lock().get(&key) {
            return Ok(plan.clone());
        }
        let plan = if self.config.auto_optimize && !self.extensions.is_empty() {
            let candidates =
                enumerate_plans(queries, &self.zoo, &self.extensions, &self.config.plan)?;
            if candidates.len() == 1 {
                candidates.into_iter().next().expect("len checked")
            } else {
                let canary_end = self
                    .config
                    .canary_seconds
                    .min(video.duration_s())
                    .max(1.0 / video.fps() as f64);
                // Canary = a prefix clip of the target video (the paper's
                // "short canary input video provided by the user").
                let target = queries
                    .iter()
                    .filter_map(|q| q.accuracy_target())
                    .fold(self.config.accuracy_target, f32::max);
                let (idx, profiles) = match video.scene() {
                    Some(scene) => {
                        let canary = vqpy_video::source::SyntheticVideo::new(scene.clone());
                        let canary = canary.clip(0.0, canary_end);
                        profile_and_choose(
                            &candidates,
                            &canary,
                            &self.zoo,
                            &self.config.exec,
                            target,
                        )?
                    }
                    None => (0, Vec::new()),
                };
                *self.last_profiles.lock() = profiles;
                candidates
                    .into_iter()
                    .nth(idx)
                    .expect("index from enumerate")
            }
        } else {
            let mut plan = build_plan(queries, &self.zoo, &self.config.plan)?;
            crate::backend::optimize::apply_passes(&mut plan, &self.config.plan);
            plan
        };
        self.plan_cache.lock().insert(key, plan.clone());
        Ok(plan)
    }

    /// Executes one basic query, using the materialized-result cache when
    /// the same query was already answered on this video.
    pub fn execute(&self, query: &Arc<Query>, video: &dyn VideoSource) -> Result<Arc<QueryResult>> {
        let cache_key = (video.video_id(), Self::cache_key(query));
        if self.config.enable_result_cache {
            if let Some(hit) = self.result_cache.lock().get(&cache_key) {
                return Ok(Arc::clone(hit));
            }
        }
        let plan = self.plan_for(std::slice::from_ref(query), video)?;
        let results = execute_plan(&plan, video, &self.zoo, &self.clock, &self.config.exec)?;
        let result = Arc::new(results.into_iter().next().expect("one query planned"));
        if self.config.enable_result_cache {
            self.result_cache
                .lock()
                .insert(cache_key, Arc::clone(&result));
        }
        Ok(result)
    }

    /// Executes several queries as one shared pipeline (detector, tracker,
    /// and property computations are shared; §5.3's VQPy-Opt).
    pub fn execute_shared(
        &self,
        queries: &[Arc<Query>],
        video: &dyn VideoSource,
    ) -> Result<Vec<Arc<QueryResult>>> {
        let plan = self.plan_for(queries, video)?;
        let results = execute_plan(&plan, video, &self.zoo, &self.clock, &self.config.exec)?;
        let shared: Vec<Arc<QueryResult>> = results.into_iter().map(Arc::new).collect();
        if self.config.enable_result_cache {
            let mut cache = self.result_cache.lock();
            for (q, r) in queries.iter().zip(&shared) {
                cache.insert((video.video_id(), Self::cache_key(q)), Arc::clone(r));
            }
        }
        Ok(shared)
    }

    /// Executes a composed query expression, applying the duration /
    /// temporal combinators on top of basic query results.
    pub fn execute_expr(
        &self,
        expr: &QueryExpr,
        video: &dyn VideoSource,
    ) -> Result<ComposedResult> {
        match expr {
            QueryExpr::Basic(q) | QueryExpr::Spatial(q) => {
                let r = self.execute(q, video)?;
                let frames = r.hit_frames();
                Ok(ComposedResult {
                    satisfied: !frames.is_empty(),
                    frames,
                    pairs: Vec::new(),
                })
            }
            QueryExpr::Duration {
                base,
                min_frames,
                max_gap,
            } => {
                let inner = self.execute_expr(base, video)?;
                let frames = duration_filter(&inner.frames, *min_frames, *max_gap);
                Ok(ComposedResult {
                    satisfied: !frames.is_empty(),
                    frames,
                    pairs: Vec::new(),
                })
            }
            QueryExpr::Temporal {
                first,
                second,
                window_frames,
            } => {
                let a = self.execute_expr(first, video)?;
                let b = self.execute_expr(second, video)?;
                let pairs = temporal_join(&a.frames, &b.frames, *window_frames);
                let frames = pairs.iter().map(|&(_, f2)| f2).collect::<Vec<_>>();
                Ok(ComposedResult {
                    satisfied: !pairs.is_empty(),
                    frames,
                    pairs,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::library;
    use crate::frontend::predicate::Pred;
    use vqpy_video::presets;
    use vqpy_video::scene::Scene;
    use vqpy_video::source::SyntheticVideo;

    fn session() -> VqpySession {
        VqpySession::new(ModelZoo::standard())
    }

    fn red_car() -> Arc<Query> {
        Query::builder("RedCar")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.5) & Pred::eq("car", "color", "red"))
            .build()
            .unwrap()
    }

    #[test]
    fn result_cache_avoids_recomputation() {
        let s = session();
        let v = SyntheticVideo::new(Scene::generate(presets::banff(), 31, 10.0));
        let q = red_car();
        let r1 = s.execute(&q, &v).unwrap();
        let ms_after_first = s.clock().virtual_ms();
        assert!(ms_after_first > 0.0);
        let r2 = s.execute(&q, &v).unwrap();
        let ms_after_second = s.clock().virtual_ms();
        assert_eq!(r1.hit_frame_set(), r2.hit_frame_set());
        assert_eq!(
            ms_after_first, ms_after_second,
            "second execution must be served from the cache"
        );
    }

    #[test]
    fn different_videos_do_not_share_results() {
        let s = session();
        let v1 = SyntheticVideo::new(Scene::generate(presets::banff(), 1, 5.0));
        let v2 = SyntheticVideo::new(Scene::generate(presets::banff(), 2, 5.0));
        let q = red_car();
        let _ = s.execute(&q, &v1).unwrap();
        let before = s.clock().virtual_ms();
        let _ = s.execute(&q, &v2).unwrap();
        assert!(s.clock().virtual_ms() > before, "v2 must actually execute");
    }

    #[test]
    fn pipelined_session_matches_sequential_session() {
        let v = SyntheticVideo::new(Scene::generate(presets::jackson(), 55, 10.0));
        let q = red_car();
        let seq = VqpySession::new(ModelZoo::standard());
        let seq_result = seq.execute(&q, &v).unwrap();
        let pipe = VqpySession::with_config(ModelZoo::standard(), SessionConfig::pipelined(3));
        let pipe_result = pipe.execute(&q, &v).unwrap();
        assert_eq!(seq_result.hit_frame_set(), pipe_result.hit_frame_set());
    }

    #[test]
    fn composed_duration_runs() {
        let s = session();
        let v = SyntheticVideo::new(Scene::generate(presets::jackson(), 77, 15.0));
        let base = Query::builder("AnyCar")
            .vobj("car", library::vehicle_schema())
            .frame_constraint(Pred::gt("car", "score", 0.5))
            .build()
            .unwrap();
        let expr = crate::frontend::compose::duration_query(QueryExpr::basic(base), 10, 2).unwrap();
        let r = s.execute_expr(&expr, &v).unwrap();
        // Traffic at Jackson rates should produce sustained car presence.
        assert!(r.satisfied);
        assert!(r.frames.len() >= 10);
    }
}
