//! The extension registry (§4.4, Figures 11-12): plug-and-play optimization
//! registration.
//!
//! Users register specialized NNs, binary classifiers, and differencing
//! frame filters against VObj schemas; the planner picks them up when
//! enumerating candidate plans and the canary profiler decides which
//! actually ship.

use parking_lot::RwLock;
use std::collections::HashMap;
use vqpy_models::Value;

/// A registered specialized NN: a cheaper detector that only fires on
/// objects satisfying `prop == value` (Figure 11's `RedCarDetection`).
#[derive(Debug, Clone)]
pub struct SpecializedNnReg {
    /// VObj schema name (or an ancestor) this applies to.
    pub schema: String,
    /// Zoo detector name.
    pub detector: String,
    /// The conjunct the detector implements.
    pub prop: String,
    pub value: Value,
}

/// A registered binary classifier (Figure 11's `no_red_on_road`): a frame
/// filter discarding frames unlikely to contain matching objects.
#[derive(Debug, Clone)]
pub struct BinaryFilterReg {
    pub schema: String,
    /// Zoo frame-classifier name.
    pub model: String,
}

/// A registered differencing frame filter (Figure 12's
/// `similar_to_prev_frame`).
#[derive(Debug, Clone, Copy)]
pub struct FrameFilterReg {
    /// Mean-absolute-pixel-difference threshold below which frames drop.
    pub threshold: f32,
}

/// Thread-safe registry of optimization extensions.
#[derive(Debug, Default)]
pub struct ExtensionRegistry {
    specialized: RwLock<HashMap<String, Vec<SpecializedNnReg>>>,
    binary: RwLock<HashMap<String, Vec<BinaryFilterReg>>>,
    frame_filters: RwLock<Vec<FrameFilterReg>>,
}

impl ExtensionRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a specialized NN on a VObj schema.
    pub fn register_specialized_nn(&self, reg: SpecializedNnReg) {
        self.specialized
            .write()
            .entry(reg.schema.clone())
            .or_default()
            .push(reg);
    }

    /// Registers a binary classifier filter on a VObj schema.
    pub fn register_binary_filter(&self, reg: BinaryFilterReg) {
        self.binary
            .write()
            .entry(reg.schema.clone())
            .or_default()
            .push(reg);
    }

    /// Registers a differencing frame filter on the scene.
    pub fn register_frame_filter(&self, reg: FrameFilterReg) {
        self.frame_filters.write().push(reg);
    }

    /// Specialized NNs applicable to a schema inheritance chain.
    /// `chain_contains` reports whether a schema name appears in the chain.
    pub fn specialized_for(&self, chain_contains: impl Fn(&str) -> bool) -> Vec<SpecializedNnReg> {
        self.specialized
            .read()
            .iter()
            .filter(|(schema, _)| chain_contains(schema))
            .flat_map(|(_, regs)| regs.iter().cloned())
            .collect()
    }

    /// Binary filters applicable to a schema inheritance chain.
    pub fn binary_for(&self, chain_contains: impl Fn(&str) -> bool) -> Vec<BinaryFilterReg> {
        self.binary
            .read()
            .iter()
            .filter(|(schema, _)| chain_contains(schema))
            .flat_map(|(_, regs)| regs.iter().cloned())
            .collect()
    }

    /// All registered frame filters.
    pub fn frame_filters(&self) -> Vec<FrameFilterReg> {
        self.frame_filters.read().clone()
    }

    /// Whether anything is registered at all (planner short-circuit).
    pub fn is_empty(&self) -> bool {
        self.specialized.read().is_empty()
            && self.binary.read().is_empty()
            && self.frame_filters.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_and_lookup() {
        let reg = ExtensionRegistry::new();
        assert!(reg.is_empty());
        reg.register_specialized_nn(SpecializedNnReg {
            schema: "Vehicle".into(),
            detector: "red_car_detector".into(),
            prop: "color".into(),
            value: Value::from("red"),
        });
        reg.register_binary_filter(BinaryFilterReg {
            schema: "Vehicle".into(),
            model: "no_red_on_road".into(),
        });
        reg.register_frame_filter(FrameFilterReg { threshold: 0.5 });
        assert!(!reg.is_empty());

        // A RedCar schema inheriting Vehicle sees both registrations.
        let chain = |name: &str| name == "Vehicle" || name == "RedCar";
        assert_eq!(reg.specialized_for(chain).len(), 1);
        assert_eq!(reg.binary_for(chain).len(), 1);
        assert_eq!(reg.frame_filters().len(), 1);

        // An unrelated schema sees none.
        let other = |name: &str| name == "Person";
        assert!(reg.specialized_for(other).is_empty());
        assert!(reg.binary_for(other).is_empty());
    }
}
