//! # vqpy-core
//!
//! The core of the VQPy reproduction: a video-object-oriented query
//! frontend and an object-centric optimizing backend, after
//! "VQPy: An Object-Oriented Approach to Modern Video Analytics"
//! (Yu et al., MLSys 2024).
//!
//! - **Frontend** ([`frontend`]): [`frontend::vobj::VObjSchema`] with
//!   inheritance, stateless/stateful/intrinsic properties,
//!   [`frontend::relation::RelationSchema`], predicate expressions with
//!   `&`/`|`/`!`, [`frontend::query::Query`] with frame/video constraints
//!   and outputs, and higher-order composition
//!   (Spatial/Duration/Temporal) with Rules 1-3 enforced.
//! - **Backend** ([`backend`]): object-graph data model, the six operator
//!   families, lazy plan generation, predicate pull-up, operator fusion,
//!   inheritance-driven alternative plans, canary profiling with F1
//!   scoring, intrinsic-property reuse, and materialized query results.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use vqpy_core::frontend::{library, predicate::Pred, query::Query};
//! use vqpy_core::session::VqpySession;
//! use vqpy_models::ModelZoo;
//! use vqpy_video::{presets, scene::Scene, source::SyntheticVideo};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let query = Query::builder("RedCar")
//!     .vobj("car", library::vehicle_schema())
//!     .frame_constraint(Pred::gt("car", "score", 0.6) & Pred::eq("car", "color", "red"))
//!     .frame_output(&[("car", "track_id"), ("car", "bbox")])
//!     .build()?;
//! let session = VqpySession::new(ModelZoo::standard());
//! let video = SyntheticVideo::new(Scene::generate(presets::banff(), 7, 5.0));
//! let result = session.execute(&query, &video)?;
//! println!("{} hit frames", result.frame_hits.len());
//! # Ok(())
//! # }
//! ```

pub mod backend;
pub mod error;
pub mod extend;
pub mod frontend;
pub mod scoring;
pub mod session;

pub use vqpy_obs::{Telemetry, Tracer};

pub use backend::dispatch::{
    DirectDispatch, ModelDispatch, ModelStage, RetryDispatch, RetryPolicy, RETRY_BACKOFF_LABEL,
};
pub use backend::exec::{
    Collector, ExecConfig, ExecMetrics, ExecMode, FrameHit, QueryAccum, QueryResult, ResultSink,
    StageOps,
};
pub use backend::plan::{build_plan, OpSpec, PlanDag, PlanOptions};
pub use error::{panic_message, ComposeError, VqpyError};
pub use extend::{BinaryFilterReg, ExtensionRegistry, FrameFilterReg, SpecializedNnReg};
pub use frontend::compose::{duration_query, spatial_query, temporal_query, QueryExpr};
pub use frontend::predicate::{CmpOp, Pred, PropRef};
pub use frontend::query::{Aggregate, Query, QueryBuilder};
pub use frontend::typed::{
    Alias, Prop, Schema, Select, TypedHit, TypedQuery, TypedQueryBuilder, TypedResult,
};
pub use frontend::vobj::VObjSchema;
pub use session::{ComposedResult, SessionConfig, VqpySession};
