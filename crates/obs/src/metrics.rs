//! Lock-light metrics: atomic counters, gauges, and log-bucketed
//! histograms with deterministic percentile readout, collected in a
//! shared [`Registry`].
//!
//! All handles are cheap clones of `Arc`-backed inners; every hot-path
//! operation (`inc`, `add`, `set`, `observe`) is a handful of relaxed
//! atomic ops and never takes a lock. The registry's lock is only touched
//! on metric creation and export.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    inner: Arc<AtomicU64>,
}

impl Counter {
    /// Creates an unregistered counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.inner.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }

    /// Overwrites the value. Intended for export-time synchronisation of
    /// totals that are authoritatively tracked elsewhere (e.g. batcher
    /// stats snapshots); do not mix with [`Counter::add`] on the same
    /// counter.
    pub fn store(&self, v: u64) {
        self.inner.store(v, Ordering::Relaxed);
    }
}

/// A gauge holding an arbitrary `f64` (stored as bits in an atomic).
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    bits: Arc<AtomicU64>,
}

impl Gauge {
    /// Creates an unregistered gauge starting at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

// Histogram bucket layout: values are recorded in integer microseconds.
// The first `LINEAR_BUCKETS` buckets hold one microsecond each (exact for
// sub-128us values); above that, each power-of-two octave is split into
// `SUBS` linear sub-buckets, giving a worst-case relative error of
// 1/SUBS = 6.25%. Values above ~2^40us (~12.7 days) clamp into the last
// bucket.
const LINEAR_BUCKETS: usize = 128;
const SUB_BITS: u32 = 4;
const SUBS: usize = 1 << SUB_BITS;
const MIN_EXP: u32 = 7;
const MAX_EXP: u32 = 39;
const OCTAVES: usize = (MAX_EXP - MIN_EXP + 1) as usize;
const BUCKETS: usize = LINEAR_BUCKETS + OCTAVES * SUBS;
const CLAMP_MAX: u64 = (1u64 << (MAX_EXP + 1)) - 1;

fn bucket_index(v: u64) -> usize {
    let v = v.min(CLAMP_MAX);
    if v < LINEAR_BUCKETS as u64 {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros();
    let sub = (v >> (exp - SUB_BITS)) as usize & (SUBS - 1);
    LINEAR_BUCKETS + (exp - MIN_EXP) as usize * SUBS + sub
}

/// Lower bound of the value range a bucket covers, in microseconds. This
/// is the representative value percentile queries report, so readouts are
/// deterministic and exact whenever recorded values are aligned to the
/// bucket resolution (always true below 128us).
fn bucket_low(index: usize) -> u64 {
    if index < LINEAR_BUCKETS {
        return index as u64;
    }
    let octave = (index - LINEAR_BUCKETS) / SUBS;
    let sub = (index - LINEAR_BUCKETS) % SUBS;
    ((SUBS + sub) as u64) << (MIN_EXP + octave as u32 - SUB_BITS)
}

struct HistogramInner {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
    min_us: AtomicU64,
}

/// A log-bucketed latency histogram recording microsecond samples.
///
/// Percentiles walk the bucket array and report the bucket's lower bound,
/// except that the top rank reports the exact observed maximum — so
/// `quantile(1.0)` (and any quantile whose rank lands on the last sample)
/// is always exact, and every readout is deterministic for a given sample
/// multiset.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("mean_ms", &self.mean_ms())
            .field("max_ms", &self.max_ms())
            .finish()
    }
}

impl Histogram {
    /// Creates an unregistered, empty histogram.
    pub fn new() -> Self {
        let mut buckets = Vec::with_capacity(BUCKETS);
        buckets.resize_with(BUCKETS, || AtomicU64::new(0));
        Self {
            inner: Arc::new(HistogramInner {
                buckets,
                count: AtomicU64::new(0),
                sum_us: AtomicU64::new(0),
                max_us: AtomicU64::new(0),
                min_us: AtomicU64::new(u64::MAX),
            }),
        }
    }

    /// Records one sample, in microseconds.
    pub fn observe_us(&self, us: u64) {
        let us = us.min(CLAMP_MAX);
        let i = &self.inner;
        i.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        i.count.fetch_add(1, Ordering::Relaxed);
        i.sum_us.fetch_add(us, Ordering::Relaxed);
        i.max_us.fetch_max(us, Ordering::Relaxed);
        i.min_us.fetch_min(us, Ordering::Relaxed);
    }

    /// Records one sample, in milliseconds (rounded to the nearest
    /// microsecond; negative and non-finite samples are ignored).
    pub fn observe(&self, ms: f64) {
        if ms.is_finite() && ms >= 0.0 {
            self.observe_us((ms * 1000.0).round() as u64);
        }
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, in milliseconds.
    pub fn sum_ms(&self) -> f64 {
        self.inner.sum_us.load(Ordering::Relaxed) as f64 / 1000.0
    }

    /// Mean sample, in milliseconds (`0.0` when empty).
    pub fn mean_ms(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_ms() / n as f64
        }
    }

    /// Exact maximum sample, in milliseconds (`0.0` when empty).
    pub fn max_ms(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.inner.max_us.load(Ordering::Relaxed) as f64 / 1000.0
        }
    }

    /// Exact minimum sample, in milliseconds (`0.0` when empty).
    pub fn min_ms(&self) -> f64 {
        if self.count() == 0 {
            0.0
        } else {
            self.inner.min_us.load(Ordering::Relaxed) as f64 / 1000.0
        }
    }

    /// The `q`-quantile (`q` in `[0, 1]`), in milliseconds.
    ///
    /// Rank semantics: for `n` samples the query targets rank
    /// `clamp(ceil(q*n), 1, n)`; the answer is the lower bound of the
    /// bucket holding that rank, or the exact maximum when the rank is
    /// `n`. Returns `0.0` when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count();
        if n == 0 {
            return 0.0;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        if rank == n {
            return self.max_ms();
        }
        let mut cum = 0u64;
        for (idx, b) in self.inner.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                return bucket_low(idx) as f64 / 1000.0;
            }
        }
        self.max_ms()
    }

    /// Convenience: `(p50, p95, p99, max)` in milliseconds.
    pub fn percentiles(&self) -> (f64, f64, f64, f64) {
        (
            self.quantile(0.50),
            self.quantile(0.95),
            self.quantile(0.99),
            self.max_ms(),
        )
    }
}

/// One registered metric handle.
#[derive(Clone, Debug)]
pub enum Metric {
    /// A [`Counter`].
    Counter(Counter),
    /// A [`Gauge`].
    Gauge(Gauge),
    /// A [`Histogram`].
    Histogram(Histogram),
}

/// A shared, order-stable collection of named metrics.
///
/// Names may carry Prometheus-style labels inline, e.g.
/// `vqpy_delivery_latency_ms{query="RedCar"}`; the exporter splits the
/// base name off for `# TYPE` lines and merges `quantile` labels into the
/// existing set. Looking up an existing name returns a clone of the same
/// handle, so e.g. a re-attached query keeps accumulating into its
/// original histogram.
#[derive(Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("metrics", &self.metrics.lock().len())
            .finish()
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use.
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric {name:?} already registered as {other:?}"),
        }
    }

    /// A point-in-time copy of every registered metric handle, sorted by
    /// name.
    pub fn snapshot(&self) -> Vec<(String, Metric)> {
        self.metrics
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }
}

/// Escapes a string for use as a Prometheus label value (backslash,
/// double quote, and newline). Use when building labelled metric names
/// from untrusted strings, e.g. user-supplied query names.
pub fn label_escape(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_buckets_are_exact_microseconds() {
        let h = Histogram::new();
        for us in 1..=100u64 {
            h.observe_us(us);
        }
        // All samples sit in the 1us-exact linear range, so every readout
        // is exact: rank(ceil(q*100)).
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.50), 0.050);
        assert_eq!(h.quantile(0.95), 0.095);
        assert_eq!(h.quantile(0.99), 0.099);
        assert_eq!(h.max_ms(), 0.100);
        assert_eq!(h.min_ms(), 0.001);
        assert!((h.mean_ms() - 0.0505).abs() < 1e-12, "{}", h.mean_ms());
    }

    #[test]
    fn log_buckets_report_deterministic_lower_bounds() {
        let h = Histogram::new();
        // 50_000us lies in the [32768, 65536) octave with 2048us
        // resolution: its bucket's lower bound is 49_152us.
        for _ in 0..10 {
            h.observe_us(50_000);
        }
        h.observe_us(60_000);
        assert_eq!(h.quantile(0.5), 49.152);
        // The top rank always reports the exact max.
        assert_eq!(h.quantile(1.0), 60.0);
        assert_eq!(h.max_ms(), 60.0);
    }

    #[test]
    fn bucket_low_inverts_bucket_index_on_aligned_values() {
        for v in [0u64, 1, 17, 127, 128, 200, 1 << 20, (16 + 9) << 10] {
            let idx = bucket_index(v);
            let low = bucket_low(idx);
            assert!(low <= v, "low {low} > v {v}");
            assert_eq!(bucket_index(low), idx, "v={v}");
        }
        // Aligned values round-trip exactly.
        assert_eq!(bucket_low(bucket_index(200)), 200);
        assert_eq!(bucket_low(bucket_index(1 << 20)), 1 << 20);
    }

    #[test]
    fn observe_ms_rounds_and_guards() {
        let h = Histogram::new();
        h.observe(0.0421); // 42.1us -> 42us
        h.observe(-5.0); // ignored
        h.observe(f64::NAN); // ignored
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(1.0), 0.042);
    }

    #[test]
    fn clamp_does_not_panic_or_misfile() {
        let h = Histogram::new();
        h.observe_us(u64::MAX);
        assert_eq!(h.count(), 1);
        assert!(h.quantile(0.5) > 0.0);
    }

    #[test]
    fn registry_returns_same_handle_for_same_name() {
        let r = Registry::new();
        r.counter("hits").add(3);
        r.counter("hits").add(4);
        assert_eq!(r.counter("hits").get(), 7);
        r.gauge("depth").set(2.5);
        assert_eq!(r.gauge("depth").get(), 2.5);
        r.histogram("lat_ms").observe_us(10);
        assert_eq!(r.histogram("lat_ms").count(), 1);
        assert_eq!(r.snapshot().len(), 3);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        r.counter("x");
        r.gauge("x");
    }
}
