//! Exporters: Chrome/Perfetto `trace_event` JSON for the span timeline,
//! Prometheus text exposition for the metrics registry.
//!
//! Both are plain-`String` producers with no I/O; callers decide where
//! the snapshot goes (a file, stdout, an HTTP response).

use crate::metrics::{Metric, Registry};
use crate::trace::{SpanRecord, Tracer};
use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn span_event(out: &mut String, s: &SpanRecord) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":{},\"tid\":{}",
        json_escape(&s.name),
        json_escape(s.cat),
        s.start_us,
        s.dur_us,
        s.pid,
        s.tid
    );
    if !s.args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in s.args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":\"{}\"", json_escape(k), json_escape(v));
        }
        out.push('}');
    }
    out.push('}');
}

/// Renders a tracer's retained spans as a Chrome/Perfetto `trace_event`
/// JSON document (`{"traceEvents": [...]}` object form). Spans are sorted
/// by `(pid, tid, ts)` so the output is deterministic for a deterministic
/// run; named lanes (see [`Tracer::set_process_name`]) are emitted as
/// `process_name` metadata events. Open the result at `ui.perfetto.dev`
/// or `chrome://tracing`.
pub fn perfetto_json(tracer: &Tracer) -> String {
    let mut spans = tracer.spans();
    spans.sort_by_key(|s| (s.pid, s.tid, s.start_us, s.dur_us));
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for (pid, name) in tracer.process_names() {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(
            out,
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{},\"tid\":0,\"args\":{{\"name\":\"{}\"}}}}",
            pid,
            json_escape(&name)
        );
    }
    for s in &spans {
        if !first {
            out.push(',');
        }
        first = false;
        span_event(&mut out, s);
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Splits a metric name into `(base, labels)` where `labels` includes the
/// surrounding braces (empty when the name carries none).
fn split_name(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], &name[i..]),
        None => (name, ""),
    }
}

/// Merges an extra `key="value"` pair into an inline label set.
fn with_label(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{},{extra}}}", &labels[..labels.len() - 1])
    }
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// Renders a registry snapshot in Prometheus text exposition format.
///
/// Counters and gauges emit one sample each; histograms emit summary-style
/// `quantile` samples (p50/p95/p99) plus `_max`, `_sum`, and `_count`
/// series. Inline labels in metric names (e.g.
/// `latency_ms{query="RedCar"}`) are preserved and merged with the
/// `quantile` label. `# TYPE` lines are emitted once per base name.
pub fn prometheus_text(registry: &Registry) -> String {
    let mut out = String::new();
    let mut last_type_line: Option<String> = None;
    for (name, metric) in registry.snapshot() {
        let (base, labels) = split_name(&name);
        let kind = match &metric {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "summary",
        };
        let type_line = format!("# TYPE {base} {kind}");
        if last_type_line.as_deref() != Some(&type_line) {
            let _ = writeln!(out, "{type_line}");
            last_type_line = Some(type_line);
        }
        match metric {
            Metric::Counter(c) => {
                let _ = writeln!(out, "{base}{labels} {}", c.get());
            }
            Metric::Gauge(g) => {
                let _ = writeln!(out, "{base}{labels} {}", fmt_value(g.get()));
            }
            Metric::Histogram(h) => {
                for (q, v) in [
                    ("0.5", h.quantile(0.50)),
                    ("0.95", h.quantile(0.95)),
                    ("0.99", h.quantile(0.99)),
                ] {
                    let merged = with_label(labels, &format!("quantile=\"{q}\""));
                    let _ = writeln!(out, "{base}{merged} {}", fmt_value(v));
                }
                let _ = writeln!(out, "{base}_max{labels} {}", fmt_value(h.max_ms()));
                let _ = writeln!(out, "{base}_sum{labels} {}", fmt_value(h.sum_ms()));
                let _ = writeln!(out, "{base}_count{labels} {}", h.count());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn prometheus_text_emits_all_kinds() {
        let r = Registry::new();
        r.counter("vqpy_frames_total").add(42);
        r.gauge("vqpy_queue_depth").set(3.0);
        let h = r.histogram("vqpy_latency_ms{query=\"Red\"}");
        for us in 1..=100u64 {
            h.observe_us(us);
        }
        let text = prometheus_text(&r);
        assert!(text.contains("# TYPE vqpy_frames_total counter"), "{text}");
        assert!(text.contains("vqpy_frames_total 42"), "{text}");
        assert!(text.contains("# TYPE vqpy_queue_depth gauge"), "{text}");
        assert!(text.contains("vqpy_queue_depth 3"), "{text}");
        assert!(text.contains("# TYPE vqpy_latency_ms summary"), "{text}");
        assert!(
            text.contains("vqpy_latency_ms{query=\"Red\",quantile=\"0.5\"} 0.05"),
            "{text}"
        );
        assert!(
            text.contains("vqpy_latency_ms_count{query=\"Red\"} 100"),
            "{text}"
        );
        assert!(
            text.contains("vqpy_latency_ms_max{query=\"Red\"} 0.1"),
            "{text}"
        );
    }

    #[test]
    fn type_line_emitted_once_per_base_name() {
        let r = Registry::new();
        r.histogram("lat_ms{query=\"A\"}").observe_us(5);
        r.histogram("lat_ms{query=\"B\"}").observe_us(7);
        let text = prometheus_text(&r);
        assert_eq!(text.matches("# TYPE lat_ms summary").count(), 1, "{text}");
    }
}
