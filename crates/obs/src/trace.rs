//! Structured span tracing: a cheap, ring-buffer-backed [`Tracer`] whose
//! spans carry stream/frame/stage attributes and whose clock is
//! pluggable, so traces stay honest under every cost-clock mode:
//!
//! - **wall time** (the default) is correct for `ClockMode::Busy` and
//!   `ClockMode::Latency`, where model cost is host-visible real time;
//! - a **custom time source** (see [`Tracer::set_time_source`]) lets the
//!   serving layer feed the cost clock's virtual nanoseconds in
//!   `ClockMode::Virtual`, where wall time would flatten every model
//!   charge to ~zero.
//!
//! A disabled tracer (the default everywhere) reduces every span to one
//! relaxed atomic load, so instrumentation can stay compiled into the hot
//! path unconditionally.

use parking_lot::{Mutex, RwLock};
use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// First `pid` lane reserved for shard workers in the exported timeline:
/// shard `s`'s spans carry `pid = SHARD_LANE_BASE + s` (see
/// [`Tracer::for_shard`]). Chosen far above any realistic stream count so
/// shard lanes can never collide with per-stream lanes (`pid = stream + 1`).
pub const SHARD_LANE_BASE: u64 = 1 << 32;

/// The `pid` lane carrying frame-store spans (segment appends, replay
/// chunk loads, replay execution, the replay→live splice). A single shared
/// lane above the shard band: store traffic is cross-stream by nature, and
/// one lane keeps the timeline readable.
pub const STORE_LANE: u64 = 2 << 32;

/// Where a tracer reads "now" (microseconds since trace start) from.
#[derive(Clone)]
pub enum TimeSource {
    /// Wall time since the tracer was created.
    Wall,
    /// A caller-supplied monotonic microsecond counter (e.g. the cost
    /// clock's virtual time, or a deterministic counter in tests).
    Custom(Arc<dyn Fn() -> u64 + Send + Sync>),
}

impl std::fmt::Debug for TimeSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TimeSource::Wall => f.write_str("Wall"),
            TimeSource::Custom(_) => f.write_str("Custom"),
        }
    }
}

/// One finished span, in Chrome `trace_event` terms: a complete event
/// (`ph: "X"`) with microsecond start and duration, grouped by `pid`
/// (stream lane) and `tid` (worker thread).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Span name, e.g. `"decode"` or `"dispatch:detect"`.
    pub name: String,
    /// Category: `"exec"`, `"dispatch"`, `"batcher"`, `"serve"`, …
    pub cat: &'static str,
    /// Lane id; the serving layer uses `stream id + 1` (0 = shared
    /// components such as the cross-stream batcher).
    pub pid: u64,
    /// Thread lane, assigned per (tracer, OS thread) in first-use order.
    pub tid: u64,
    /// Start timestamp, microseconds since trace start.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
    /// Attribute key/value pairs (rendered under `args` in the export).
    pub args: Vec<(&'static str, String)>,
}

pub(crate) struct TracerInner {
    enabled: AtomicBool,
    epoch: Instant,
    time: RwLock<TimeSource>,
    spans: Mutex<VecDeque<SpanRecord>>,
    capacity: usize,
    dropped: AtomicU64,
    next_tid: AtomicU64,
    pub(crate) process_names: Mutex<BTreeMap<u64, String>>,
}

thread_local! {
    static THREAD_LANES: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// A cheap, cloneable span recorder. Clones share the same ring buffer;
/// [`Tracer::for_stream`] derives a handle whose spans land in a given
/// stream's lane.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
    pid: u64,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .field("pid", &self.pid)
            .field("spans", &self.inner.spans.lock().len())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Default ring capacity: enough for every span of a multi-minute demo
/// run while bounding memory to a few tens of megabytes worst case.
pub const DEFAULT_SPAN_CAPACITY: usize = 1 << 16;

impl Tracer {
    /// An enabled tracer with the default ring capacity.
    pub fn enabled() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }

    /// An enabled tracer retaining at most `capacity` spans (oldest spans
    /// are evicted first; see [`Tracer::dropped_spans`]).
    pub fn with_capacity(capacity: usize) -> Self {
        Self::build(true, capacity.max(1))
    }

    /// A disabled tracer: every span call is a no-op costing one atomic
    /// load. This is the default threaded through the executors.
    pub fn disabled() -> Self {
        Self::build(false, 1)
    }

    fn build(enabled: bool, capacity: usize) -> Self {
        Self {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(enabled),
                epoch: Instant::now(),
                time: RwLock::new(TimeSource::Wall),
                spans: Mutex::new(VecDeque::new()),
                capacity,
                dropped: AtomicU64::new(0),
                next_tid: AtomicU64::new(0),
                process_names: Mutex::new(BTreeMap::new()),
            }),
            pid: 0,
        }
    }

    /// Whether spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Derives a handle whose spans carry `pid = stream_lane`; shares the
    /// ring buffer with `self`.
    pub fn for_stream(&self, stream_lane: u64) -> Tracer {
        Tracer {
            inner: Arc::clone(&self.inner),
            pid: stream_lane,
        }
    }

    /// Derives a handle whose spans land in shard `shard`'s lane
    /// (`pid = SHARD_LANE_BASE + shard`) and names the lane
    /// `"shard <shard>"` in the Perfetto export. Shard lanes sit far above
    /// the per-stream lanes (`pid = stream + 1`), so a timeline shows the
    /// scheduler's step multiplexing alongside each stream's stage spans.
    pub fn for_shard(&self, shard: u64) -> Tracer {
        let lane = SHARD_LANE_BASE + shard;
        // Only name the lane when spans are actually recorded, so a
        // disabled tracer's export stays empty.
        if self.is_enabled() {
            self.set_process_name(lane, format!("shard {shard}"));
        }
        self.for_stream(lane)
    }

    /// Names a `pid` lane in the Perfetto export (emitted as a
    /// `process_name` metadata event).
    pub fn set_process_name(&self, pid: u64, name: impl Into<String>) {
        self.inner.process_names.lock().insert(pid, name.into());
    }

    /// Replaces the time source. Installed once, before spans are opened
    /// (e.g. by the stream server when the cost clock runs in `Virtual`
    /// mode); timestamps from different sources do not mix meaningfully.
    pub fn set_time_source(&self, f: impl Fn() -> u64 + Send + Sync + 'static) {
        *self.inner.time.write() = TimeSource::Custom(Arc::new(f));
    }

    fn now_us(&self) -> u64 {
        match &*self.inner.time.read() {
            TimeSource::Wall => self.inner.epoch.elapsed().as_micros() as u64,
            TimeSource::Custom(f) => f(),
        }
    }

    fn thread_lane(&self) -> u64 {
        let key = Arc::as_ptr(&self.inner) as usize;
        THREAD_LANES.with(|lanes| {
            let mut lanes = lanes.borrow_mut();
            if let Some((_, tid)) = lanes.iter().find(|(k, _)| *k == key) {
                return *tid;
            }
            let tid = self.inner.next_tid.fetch_add(1, Ordering::Relaxed) + 1;
            lanes.push((key, tid));
            tid
        })
    }

    /// Opens a span; it closes (and is recorded) when the returned guard
    /// drops. `cat` groups spans by layer (`"exec"`, `"dispatch"`,
    /// `"batcher"`, `"serve"`); attach attributes with
    /// [`SpanGuard::arg`].
    pub fn span(&self, cat: &'static str, name: impl Into<String>) -> SpanGuard {
        if !self.is_enabled() {
            return SpanGuard {
                inner: None,
                rec: None,
            };
        }
        let rec = SpanRecord {
            name: name.into(),
            cat,
            pid: self.pid,
            tid: self.thread_lane(),
            start_us: self.now_us(),
            dur_us: 0,
            args: Vec::new(),
        };
        SpanGuard {
            inner: Some(self.clone()),
            rec: Some(rec),
        }
    }

    /// Named lanes registered via [`Tracer::set_process_name`], sorted by
    /// pid.
    pub fn process_names(&self) -> Vec<(u64, String)> {
        self.inner
            .process_names
            .lock()
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect()
    }

    /// All retained spans, oldest first.
    pub fn spans(&self) -> Vec<SpanRecord> {
        self.inner.spans.lock().iter().cloned().collect()
    }

    /// Retained span count.
    pub fn span_count(&self) -> usize {
        self.inner.spans.lock().len()
    }

    /// Spans evicted because the ring was full.
    pub fn dropped_spans(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Discards all retained spans (the eviction counter is kept).
    pub fn clear(&self) {
        self.inner.spans.lock().clear();
    }

    fn push(&self, rec: SpanRecord) {
        let mut spans = self.inner.spans.lock();
        if spans.len() >= self.inner.capacity {
            spans.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        spans.push_back(rec);
    }
}

/// Closes its span on drop. Returned by [`Tracer::span`].
#[must_use = "a span guard records its span when dropped; binding it to _ closes it immediately"]
pub struct SpanGuard {
    inner: Option<Tracer>,
    rec: Option<SpanRecord>,
}

impl SpanGuard {
    /// Attaches an attribute (no-op on a disabled tracer's guard).
    pub fn arg(mut self, key: &'static str, value: impl std::fmt::Display) -> Self {
        self.add_arg(key, value);
        self
    }

    /// Attaches an attribute without consuming the guard.
    pub fn add_arg(&mut self, key: &'static str, value: impl std::fmt::Display) {
        if let Some(rec) = self.rec.as_mut() {
            rec.args.push((key, value.to_string()));
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let (Some(tracer), Some(mut rec)) = (self.inner.take(), self.rec.take()) {
            let end = tracer.now_us();
            rec.dur_us = end.saturating_sub(rec.start_us);
            tracer.push(rec);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic time source: each call advances by 10us.
    fn ticking() -> Arc<dyn Fn() -> u64 + Send + Sync> {
        let t = AtomicU64::new(0);
        Arc::new(move || t.fetch_add(10, Ordering::Relaxed))
    }

    fn deterministic_tracer() -> Tracer {
        let tr = Tracer::enabled();
        let tick = ticking();
        tr.set_time_source(move || tick());
        tr
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tr = Tracer::disabled();
        {
            let _s = tr.span("exec", "decode").arg("frame", 1);
        }
        assert_eq!(tr.span_count(), 0);
        assert!(!tr.is_enabled());
    }

    #[test]
    fn spans_nest_and_close_in_inner_first_order() {
        let tr = deterministic_tracer();
        {
            let _outer = tr.span("exec", "detect").arg("frames", "0..8");
            {
                let _inner = tr.span("dispatch", "dispatch:detect").arg("items", 8);
            }
        }
        let spans = tr.spans();
        assert_eq!(spans.len(), 2);
        // Inner closed first, so it is recorded first.
        let (inner, outer) = (&spans[0], &spans[1]);
        assert_eq!(inner.name, "dispatch:detect");
        assert_eq!(outer.name, "detect");
        // Proper nesting: inner starts after outer and ends before it.
        assert!(inner.start_us >= outer.start_us);
        assert!(inner.start_us + inner.dur_us <= outer.start_us + outer.dur_us);
        assert_eq!(outer.args, vec![("frames", "0..8".to_string())]);
        // Both on the same thread lane.
        assert_eq!(inner.tid, outer.tid);
    }

    #[test]
    fn sibling_spans_are_ordered_by_start_time() {
        let tr = deterministic_tracer();
        for i in 0..3 {
            let _s = tr.span("exec", format!("batch-{i}"));
        }
        let spans = tr.spans();
        assert_eq!(spans.len(), 3);
        assert!(spans.windows(2).all(|w| w[0].start_us < w[1].start_us));
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let tr = Tracer::with_capacity(2);
        for i in 0..5 {
            let _s = tr.span("exec", format!("s{i}"));
        }
        assert_eq!(tr.span_count(), 2);
        assert_eq!(tr.dropped_spans(), 3);
        let names: Vec<_> = tr.spans().into_iter().map(|s| s.name).collect();
        assert_eq!(names, ["s3", "s4"]);
    }

    #[test]
    fn for_stream_assigns_pid_lane() {
        let tr = deterministic_tracer();
        {
            let _s = tr.for_stream(3).span("serve", "demux");
        }
        assert_eq!(tr.spans()[0].pid, 3);
    }

    #[test]
    fn cross_thread_spans_get_distinct_tids() {
        let tr = deterministic_tracer();
        {
            let _a = tr.span("exec", "main");
        }
        let tr2 = tr.clone();
        std::thread::spawn(move || {
            let _b = tr2.span("exec", "worker");
        })
        .join()
        .unwrap();
        let spans = tr.spans();
        assert_eq!(spans.len(), 2);
        assert_ne!(spans[0].tid, spans[1].tid);
    }
}
