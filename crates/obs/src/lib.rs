//! # vqpy-obs
//!
//! End-to-end telemetry for the VQPy reproduction: a lock-light
//! [`Registry`] of atomic counters, gauges, and log-bucketed histograms
//! (exact p50/p95/p99/max readout); a ring-buffer [`Tracer`] producing
//! structured spans with stream/frame/stage attributes; and exporters
//! rendering a whole run as a Chrome/Perfetto `trace_event` JSON timeline
//! ([`perfetto_json`]) or a Prometheus text-exposition snapshot
//! ([`prometheus_text`]).
//!
//! The crate sits below every other layer (it depends only on the
//! vendored `parking_lot`), so the executors, the cross-stream batcher,
//! and the stream supervisor can all carry the same [`Telemetry`] handle.
//! Everything defaults to disabled tracing — one relaxed atomic load per
//! would-be span — so instrumentation stays compiled in unconditionally
//! without moving the benchmarks.

#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod trace;

pub use export::{json_escape, perfetto_json, prometheus_text};
pub use metrics::{label_escape, Counter, Gauge, Histogram, Metric, Registry};
pub use trace::{
    SpanGuard, SpanRecord, TimeSource, Tracer, DEFAULT_SPAN_CAPACITY, SHARD_LANE_BASE, STORE_LANE,
};

/// The bundle a serving run carries: one metrics [`Registry`] plus one
/// span [`Tracer`]. Clones share both; the handle is what
/// `ServeConfig.telemetry` holds and `StreamSupervisor::telemetry()`
/// returns, so one call captures a whole run.
#[derive(Clone, Debug, Default)]
pub struct Telemetry {
    registry: Registry,
    tracer: Tracer,
}

impl Telemetry {
    /// Metrics on, span tracing off (the default): the registry always
    /// collects — its hot path is a few relaxed atomics — while would-be
    /// spans cost one atomic load each.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Metrics on and span tracing on, with the default ring capacity.
    pub fn with_tracing() -> Self {
        Self {
            registry: Registry::new(),
            tracer: Tracer::enabled(),
        }
    }

    /// Metrics on and span tracing on, retaining at most `capacity`
    /// spans.
    pub fn with_span_capacity(capacity: usize) -> Self {
        Self {
            registry: Registry::new(),
            tracer: Tracer::with_capacity(capacity),
        }
    }

    /// The shared metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The shared span tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Renders the span timeline as Chrome/Perfetto `trace_event` JSON.
    pub fn perfetto_json(&self) -> String {
        perfetto_json(&self.tracer)
    }

    /// Renders the registry as a Prometheus text-exposition snapshot.
    pub fn prometheus_text(&self) -> String {
        prometheus_text(&self.registry)
    }
}
