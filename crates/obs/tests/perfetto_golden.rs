//! Golden-file test: the Perfetto export of a tiny deterministic run is
//! byte-stable and valid Chrome `trace_event` JSON.
//!
//! Determinism comes from a counter time source (each clock read advances
//! exactly 100us) and single-threaded span emission (one tid lane). To
//! regenerate the golden file after an intentional exporter change, run
//! with `VQPY_BLESS=1` and commit the result.

use std::sync::atomic::{AtomicU64, Ordering};
use vqpy_obs::{perfetto_json, Tracer};

/// Minimal recursive-descent JSON validator: returns the remaining input
/// after one value, or panics with a position on malformed input. Used
/// instead of a JSON dependency to genuinely check well-formedness.
mod json {
    pub fn validate(s: &str) {
        let rest = skip_ws(value(skip_ws(s)));
        assert!(rest.is_empty(), "trailing garbage: {rest:.40?}");
    }

    fn skip_ws(s: &str) -> &str {
        s.trim_start_matches([' ', '\t', '\n', '\r'])
    }

    fn value(s: &str) -> &str {
        match s.chars().next() {
            Some('{') => object(s),
            Some('[') => array(s),
            Some('"') => string(s),
            Some('t') => literal(s, "true"),
            Some('f') => literal(s, "false"),
            Some('n') => literal(s, "null"),
            Some(c) if c == '-' || c.is_ascii_digit() => number(s),
            other => panic!("unexpected start of value: {other:?} at {s:.40?}"),
        }
    }

    fn literal<'a>(s: &'a str, lit: &str) -> &'a str {
        s.strip_prefix(lit)
            .unwrap_or_else(|| panic!("expected {lit} at {s:.40?}"))
    }

    fn number(s: &str) -> &str {
        let end = s
            .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
            .unwrap_or(s.len());
        assert!(end > 0, "empty number at {s:.40?}");
        &s[end..]
    }

    fn string(s: &str) -> &str {
        let mut chars = s.char_indices().skip(1);
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return &s[i + 1..],
                '\\' => {
                    chars.next().expect("escape at end of input");
                }
                c if (c as u32) < 0x20 => panic!("raw control char in string"),
                _ => {}
            }
        }
        panic!("unterminated string at {s:.40?}");
    }

    fn object(s: &str) -> &str {
        let mut rest = skip_ws(&s[1..]);
        if let Some(r) = rest.strip_prefix('}') {
            return r;
        }
        loop {
            rest = skip_ws(string(rest));
            rest = skip_ws(literal(rest, ":"));
            rest = skip_ws(value(rest));
            match rest.chars().next() {
                Some(',') => rest = skip_ws(&rest[1..]),
                Some('}') => return &rest[1..],
                other => panic!("expected , or }} in object, got {other:?}"),
            }
        }
    }

    fn array(s: &str) -> &str {
        let mut rest = skip_ws(&s[1..]);
        if let Some(r) = rest.strip_prefix(']') {
            return r;
        }
        loop {
            rest = skip_ws(value(rest));
            match rest.chars().next() {
                Some(',') => rest = skip_ws(&rest[1..]),
                Some(']') => return &rest[1..],
                other => panic!("expected , or ] in array, got {other:?}"),
            }
        }
    }
}

/// Replays the span shapes of a miniature serving step: decode with a
/// nested detect dispatch on stream lane 1, a shared coalesce window on
/// lane 0, and a demux on stream lane 2.
fn tiny_run() -> Tracer {
    let tracer = Tracer::enabled();
    let t = AtomicU64::new(0);
    tracer.set_time_source(move || t.fetch_add(100, Ordering::Relaxed));
    tracer.set_process_name(0, "shared");
    tracer.set_process_name(1, "stream 0");
    tracer.set_process_name(2, "stream 1");
    let stream0 = tracer.for_stream(1);
    {
        let _decode = stream0.span("exec", "decode").arg("frames", "0..8");
        let _detect = stream0
            .span("dispatch", "dispatch:detect")
            .arg("model", "yolo")
            .arg("items", 8);
    }
    {
        let _coalesce = tracer
            .span("batcher", "coalesce")
            .arg("requests", 2)
            .arg("items", 16);
    }
    {
        let _demux = tracer.for_stream(2).span("serve", "demux").arg("frame", 7);
    }
    tracer
}

#[test]
fn perfetto_export_matches_golden_and_is_valid_json() {
    let exported = perfetto_json(&tiny_run());
    json::validate(&exported);

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_trace.json");
    if std::env::var_os("VQPY_BLESS").is_some() {
        std::fs::write(golden_path, &exported).expect("bless golden file");
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden_trace.json exists");
    assert_eq!(
        exported,
        golden.trim_end(),
        "Perfetto export drifted from the golden file; rerun with VQPY_BLESS=1 if intentional"
    );
}

#[test]
fn perfetto_export_of_empty_tracer_is_valid() {
    let exported = perfetto_json(&Tracer::disabled());
    json::validate(&exported);
    assert!(exported.contains("\"traceEvents\":[]"), "{exported}");
}

#[test]
fn export_carries_required_trace_event_fields() {
    let exported = perfetto_json(&tiny_run());
    for field in [
        "\"ph\":\"X\"",
        "\"ts\":",
        "\"dur\":",
        "\"pid\":",
        "\"tid\":",
    ] {
        assert!(exported.contains(field), "missing {field}: {exported}");
    }
    for name in ["decode", "dispatch:detect", "coalesce", "demux"] {
        assert!(
            exported.contains(&format!("\"name\":\"{name}\"")),
            "missing span {name}: {exported}"
        );
    }
    assert!(exported.contains("\"process_name\""), "{exported}");
}
