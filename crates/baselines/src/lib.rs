//! # vqpy-baselines
//!
//! The two non-SQL baselines of the paper's evaluation:
//!
//! - [`cvip`]: a CVIP-style handcrafted pipeline (§5.1) that runs every
//!   attribute model on every vehicle crop of every frame and filters last.
//! - [`mllm`]: a VideoChat-style multimodal-LLM simulator (§5.3) with the
//!   paper's cost profile (heavy per-frame embedding + per-query inference)
//!   and answer-quality profile (noisy booleans, inflated counts,
//!   unparseable responses).

pub mod cvip;
pub mod mllm;

pub use cvip::{run_cvip, run_cvip_with, CvipQuery, CvipRun};
pub use mllm::{MllmQuestion, MllmVariant, VideoChatSim};
