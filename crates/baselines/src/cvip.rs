//! CVIP-style handcrafted pipeline (§5.1 baseline).
//!
//! CVIP (Le et al., CVPR Workshops 2023), the 2023 AI City Challenge track
//! winner, standardizes a natural-language vehicle query into a fixed
//! color-type-direction triple and then runs *every* attribute model on
//! *every* vehicle crop of *every* frame, filtering only at the end. That
//! eager structure is why its runtime is constant across queries
//! (Figure 13) — and why VQPy's lazy evaluation and memoization beat it.

use std::collections::BTreeSet;
use vqpy_models::{Clock, ModelZoo, Value};
use vqpy_video::source::VideoSource;

/// A standardized color-type-direction query (Table 1's rightmost column).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CvipQuery {
    pub color: String,
    pub vtype: String,
    pub direction: String,
}

impl CvipQuery {
    /// Creates a query from the standardized triple, e.g.
    /// `("green", "sedan", "straight")`.
    pub fn new(color: &str, vtype: &str, direction: &str) -> Self {
        Self {
            color: color.to_owned(),
            vtype: vtype.to_owned(),
            direction: direction.to_owned(),
        }
    }
}

/// Output of a CVIP run.
#[derive(Debug, Clone)]
pub struct CvipRun {
    /// Frames containing a vehicle matching all three attributes.
    pub hit_frames: BTreeSet<u64>,
    /// Virtual ms spent per frame (Figure 13(b) series).
    pub per_frame_ms: Vec<f64>,
    /// Total virtual ms.
    pub virtual_ms: f64,
}

/// Runs the handcrafted pipeline: detector, then color + type + direction
/// models on every vehicle crop, then the final attribute filter.
///
/// # Errors
///
/// Fails if the standard models are missing from the zoo.
pub fn run_cvip(
    video: &dyn VideoSource,
    zoo: &ModelZoo,
    clock: &Clock,
    query: &CvipQuery,
) -> Result<CvipRun, vqpy_models::LookupModelError> {
    run_cvip_with(video, zoo, clock, query, "yolox")
}

/// [`run_cvip`] with an explicit crop source. The CityFlow-NL experiment
/// (§5.1) feeds both systems the dataset-provided vehicle tracks instead of
/// a live detector, which is why CVIP's cost is pure attribute-model work.
pub fn run_cvip_with(
    video: &dyn VideoSource,
    zoo: &ModelZoo,
    clock: &Clock,
    query: &CvipQuery,
    detector_name: &str,
) -> Result<CvipRun, vqpy_models::LookupModelError> {
    let detector = zoo.detector(detector_name)?;
    let color_model = zoo.classifier("color_detect")?;
    let vtype_model = zoo.classifier("vtype_detect")?;
    let dir_model = zoo.classifier("direction_model")?;

    let start = clock.virtual_ms();
    let mut hit_frames = BTreeSet::new();
    let mut per_frame_ms = Vec::with_capacity(video.frame_count() as usize);

    for f in 0..video.frame_count() {
        let frame_start = clock.virtual_ms();
        clock.charge_labeled("video_decode", vqpy_models::zoo::COST_VIDEO_DECODE);
        let frame = video.frame(f);
        let detections = detector.detect(&frame, clock);
        let mut matched = false;
        for det in &detections {
            if !matches!(det.class_label.as_str(), "car" | "bus" | "truck") {
                continue;
            }
            // The defining trait of the handcrafted pipeline: all models
            // run unconditionally on every crop; filtering happens last.
            let color = color_model.classify(&frame, det, clock);
            let vtype = vtype_model.classify(&frame, det, clock);
            let direction = dir_model.classify(&frame, det, clock);
            if color.loose_eq(&Value::from(query.color.as_str()))
                && vtype.loose_eq(&Value::from(query.vtype.as_str()))
                && direction.loose_eq(&Value::from(query.direction.as_str()))
            {
                matched = true;
            }
        }
        if matched {
            hit_frames.insert(f);
        }
        per_frame_ms.push(clock.virtual_ms() - frame_start);
    }

    Ok(CvipRun {
        hit_frames,
        per_frame_ms,
        virtual_ms: clock.virtual_ms() - start,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqpy_models::ModelZoo;
    use vqpy_video::presets;
    use vqpy_video::scene::Scene;
    use vqpy_video::source::SyntheticVideo;

    fn video() -> SyntheticVideo {
        SyntheticVideo::new(Scene::generate(presets::cityflow(), 1234, 30.0))
    }

    #[test]
    fn cost_is_independent_of_query() {
        let zoo = ModelZoo::standard();
        let v = video();
        let c1 = Clock::new();
        run_cvip(&v, &zoo, &c1, &CvipQuery::new("green", "sedan", "straight")).unwrap();
        let c2 = Clock::new();
        run_cvip(&v, &zoo, &c2, &CvipQuery::new("black", "suv", "right")).unwrap();
        let a = c1.virtual_ms();
        let b = c2.virtual_ms();
        assert!(
            (a - b).abs() / a < 1e-6,
            "CVIP cost must be query-independent: {a} vs {b}"
        );
    }

    #[test]
    fn finds_matching_vehicles() {
        let zoo = ModelZoo::standard();
        let v = video();
        let scene = v.scene().unwrap();
        // Pick the attributes of a real mid-video vehicle as the query so a
        // positive definitely exists.
        let truth = scene.truth_at(scene.frame_count() / 2);
        let Some(target) = truth
            .visible
            .iter()
            .find(|e| e.attrs.as_vehicle().is_some())
        else {
            return;
        };
        let va = target.attrs.as_vehicle().unwrap();
        let q = CvipQuery::new(
            va.color.as_str(),
            va.vtype.as_str(),
            target.direction.as_str(),
        );
        let clock = Clock::new();
        let run = run_cvip(&v, &zoo, &clock, &q).unwrap();
        assert!(!run.hit_frames.is_empty());
        assert_eq!(run.per_frame_ms.len() as u64, v.frame_count());
    }

    #[test]
    fn attribute_models_run_on_every_crop() {
        let zoo = ModelZoo::standard();
        let v = video();
        let clock = Clock::new();
        run_cvip(
            &v,
            &zoo,
            &clock,
            &CvipQuery::new("red", "sedan", "straight"),
        )
        .unwrap();
        let colors = clock
            .stat("color_detect")
            .map(|s| s.invocations)
            .unwrap_or(0);
        let types = clock
            .stat("vtype_detect")
            .map(|s| s.invocations)
            .unwrap_or(0);
        let dirs = clock
            .stat("direction_model")
            .map(|s| s.invocations)
            .unwrap_or(0);
        assert_eq!(colors, types);
        assert_eq!(colors, dirs);
        assert!(colors > v.frame_count(), "several crops per frame expected");
    }
}
