//! VideoChat-style multimodal-LLM simulator (§5.3 baseline).
//!
//! Reproduces the two knobs Tables 5-7 measure: *cost* (a heavy per-frame
//! embedding precompute plus expensive per-query inference; the 13B model
//! in low-resource mode is several times slower again) and *answer
//! quality* (boolean answers derived from clip-level ground truth through a
//! per-question noise channel calibrated to Table 6's F1 profile;
//! aggregation answers biased high with a heavy tail, as in Table 7; a
//! fraction of responses is unparseable and dropped).

use rand::Rng;
use vqpy_models::{det_rng, Clock};
use vqpy_video::geometry::BBox;
use vqpy_video::scene::GroundTruth;
use vqpy_video::source::VideoSource;
use vqpy_video::{InteractionKind, NamedColor};

/// Model size / deployment variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MllmVariant {
    /// VideoChat-7B, full GPU residency.
    VideoChat7B,
    /// VideoChat-13B in low-resource mode (8-bit weights, CPU offload) —
    /// the only way 13B fits the paper's A100-40G (Table 5 footnote).
    VideoChat13BLowRes,
}

impl MllmVariant {
    /// Embedding precompute cost per frame (virtual ms); Table 5's "Pre".
    pub fn precompute_cost_per_frame(&self) -> f64 {
        match self {
            MllmVariant::VideoChat7B => 38.4,
            MllmVariant::VideoChat13BLowRes => 1071.0,
        }
    }

    fn query_cost_per_frame(&self, q: &MllmQuestion) -> f64 {
        let base = match q {
            MllmQuestion::PeopleOnCrosswalk { .. } => 72.4,
            MllmQuestion::CarsTurningLeft => 80.7,
            MllmQuestion::RedCarPresent => 85.1,
            MllmQuestion::AvgCarsOnCrossing { .. } => 116.9,
            MllmQuestion::AvgWalkingPeople => 137.3,
            MllmQuestion::PersonHitsBall => 3503.8,
        };
        match self {
            MllmVariant::VideoChat7B => base,
            // Low-resource 13B: ~7-8x slower per frame (Table 5 ratios).
            MllmVariant::VideoChat13BLowRes => base * 7.5,
        }
    }

    /// Human-readable name.
    pub fn name(&self) -> &'static str {
        match self {
            MllmVariant::VideoChat7B => "VideoChat-7B",
            MllmVariant::VideoChat13BLowRes => "VideoChat-13B*",
        }
    }
}

/// The natural-language questions of Table 4, in structured form.
#[derive(Debug, Clone, PartialEq)]
pub enum MllmQuestion {
    /// Q1: "Are there any people passing the crosswalk?"
    PeopleOnCrosswalk { region: BBox },
    /// Q2: "Are there any cars turning left at the crossing?"
    CarsTurningLeft,
    /// Q3: "Are there any red cars in the video?"
    RedCarPresent,
    /// Q4: "Tell me the average number of cars on the crossing."
    AvgCarsOnCrossing { region: BBox },
    /// Q5: "Tell me the average number of people that are walking."
    AvgWalkingPeople,
    /// Q6: "Is anyone hitting the ball?" (V-COCO-style HOI)
    PersonHitsBall,
}

impl MllmQuestion {
    fn salt(&self) -> u64 {
        match self {
            MllmQuestion::PeopleOnCrosswalk { .. } => 0xA1,
            MllmQuestion::CarsTurningLeft => 0xA2,
            MllmQuestion::RedCarPresent => 0xA3,
            MllmQuestion::AvgCarsOnCrossing { .. } => 0xA4,
            MllmQuestion::AvgWalkingPeople => 0xA5,
            MllmQuestion::PersonHitsBall => 0xA6,
        }
    }

    /// Clip-level ground truth for boolean questions.
    pub fn truth_on(&self, t: &GroundTruth) -> bool {
        match self {
            MllmQuestion::PeopleOnCrosswalk { region } => t
                .of_class("person")
                .any(|p| region.contains(&p.bbox.center())),
            MllmQuestion::CarsTurningLeft => t.visible.iter().any(|v| {
                v.attrs.as_vehicle().is_some() && v.direction == vqpy_video::Direction::Left
            }),
            MllmQuestion::RedCarPresent => t.visible.iter().any(|v| {
                v.attrs
                    .as_vehicle()
                    .map(|a| a.color == NamedColor::Red)
                    .unwrap_or(false)
            }),
            MllmQuestion::PersonHitsBall => t.has_interaction(InteractionKind::Hit),
            // Aggregation questions have no boolean truth.
            _ => false,
        }
    }

    /// Per-frame count for aggregation questions.
    pub fn count_on(&self, t: &GroundTruth) -> u64 {
        match self {
            MllmQuestion::AvgCarsOnCrossing { region } => t
                .visible
                .iter()
                .filter(|v| v.attrs.as_vehicle().is_some() && region.contains(&v.bbox.center()))
                .count() as u64,
            MllmQuestion::AvgWalkingPeople => t
                .visible
                .iter()
                .filter(|v| {
                    v.attrs
                        .as_person()
                        .map(|p| p.action == vqpy_video::PersonAction::Walking)
                        .unwrap_or(false)
                })
                .count() as u64,
            _ => u64::from(self.truth_on(t)),
        }
    }

    /// `(miss rate, false-alarm rate)` of the simulated chat answer,
    /// calibrated so clip-level F1 lands near Table 6.
    fn noise(&self) -> (f32, f32) {
        match self {
            MllmQuestion::PeopleOnCrosswalk { .. } => (0.50, 0.30),
            MllmQuestion::CarsTurningLeft => (0.55, 0.30),
            MllmQuestion::RedCarPresent => (0.30, 0.30),
            MllmQuestion::PersonHitsBall => (0.70, 0.15),
            _ => (0.0, 0.0),
        }
    }
}

/// A simulated VideoChat deployment.
#[derive(Debug, Clone)]
pub struct VideoChatSim {
    variant: MllmVariant,
    salt: u64,
}

impl VideoChatSim {
    /// Creates the simulator.
    pub fn new(variant: MllmVariant, salt: u64) -> Self {
        Self { variant, salt }
    }

    /// The variant being simulated.
    pub fn variant(&self) -> MllmVariant {
        self.variant
    }

    /// Video embedding precompute over a clip (Table 5's "Pre" phase).
    pub fn precompute(&self, clip: &dyn VideoSource, clock: &Clock) {
        let cost = self.variant.precompute_cost_per_frame() * clip.frame_count() as f64;
        clock.charge_model(&format!("{}:pre", self.variant.name()), cost);
    }

    fn charge_query(&self, clip: &dyn VideoSource, q: &MllmQuestion, clock: &Clock) {
        let cost = self.variant.query_cost_per_frame(q) * clip.frame_count() as f64;
        clock.charge_model(&format!("{}:query", self.variant.name()), cost);
    }

    /// Asks a boolean question about a clip. Returns `None` when the
    /// natural-language response could not be parsed (§5.3 dropped these
    /// data points).
    pub fn ask_bool(
        &self,
        clip: &dyn VideoSource,
        q: &MllmQuestion,
        clock: &Clock,
    ) -> Option<bool> {
        self.charge_query(clip, q, clock);
        let truth = (0..clip.frame_count())
            .step_by(usize::max(1, clip.fps() as usize / 3))
            .any(|f| q.truth_on(&clip.frame(f).truth));
        let mut rng = det_rng(self.salt ^ q.salt(), clip.video_id(), 1);
        if rng.gen::<f32>() < 0.05 {
            return None; // irrelevant rambling, unparseable
        }
        let (miss, false_alarm) = q.noise();
        Some(if truth {
            rng.gen::<f32>() >= miss
        } else {
            rng.gen::<f32>() < false_alarm
        })
    }

    /// Asks an aggregation question. The answer is biased high with a
    /// heavy tail (Table 7); `None` models dropped/unclear responses
    /// (~26-47% in the paper).
    pub fn ask_count(
        &self,
        clip: &dyn VideoSource,
        q: &MllmQuestion,
        clock: &Clock,
    ) -> Option<f64> {
        self.charge_query(clip, q, clock);
        let mut sum = 0u64;
        let mut n = 0u64;
        for f in (0..clip.frame_count()).step_by(usize::max(1, clip.fps() as usize / 3)) {
            sum += q.count_on(&clip.frame(f).truth);
            n += 1;
        }
        let truth = sum as f64 / n.max(1) as f64;
        let mut rng = det_rng(self.salt ^ q.salt(), clip.video_id(), 2);
        let drop_rate = match self.variant {
            MllmVariant::VideoChat7B => 0.40,
            MllmVariant::VideoChat13BLowRes => 0.30,
        };
        if rng.gen::<f32>() < drop_rate {
            return None;
        }
        if rng.gen::<f32>() < 0.06 {
            // Hallucinated huge value (Table 7's max responses of 65-414).
            return Some(rng.gen_range(40.0..420.0));
        }
        // Systematic over-count plus noise.
        Some(truth * rng.gen_range(1.2..3.2) + rng.gen_range(0.5..4.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vqpy_video::presets;
    use vqpy_video::scene::Scene;
    use vqpy_video::source::SyntheticVideo;

    fn video() -> SyntheticVideo {
        SyntheticVideo::new(Scene::generate(presets::auburn(), 60, 60.0))
    }

    #[test]
    fn precompute_cost_scales_with_frames_and_variant() {
        let v = video();
        let clip = v.clip(0.0, 1.0);
        let c7 = Clock::new();
        VideoChatSim::new(MllmVariant::VideoChat7B, 1).precompute(&clip, &c7);
        let c13 = Clock::new();
        VideoChatSim::new(MllmVariant::VideoChat13BLowRes, 1).precompute(&clip, &c13);
        assert!(c13.virtual_ms() > c7.virtual_ms() * 10.0);
        assert!((c7.virtual_ms() - 38.4 * 15.0).abs() < 1e-6);
    }

    #[test]
    fn boolean_answers_are_noisy_but_correlated() {
        let v = video();
        let sim = VideoChatSim::new(MllmVariant::VideoChat7B, 7);
        let clock = Clock::new();
        let q = MllmQuestion::RedCarPresent;
        let mut agree = 0u32;
        let mut total = 0u32;
        for start in 0..50 {
            let clip = v.clip(start as f64, start as f64 + 1.0);
            let truth = (0..clip.frame_count()).any(|f| q.truth_on(&clip.frame(f).truth));
            if let Some(ans) = sim.ask_bool(&clip, &q, &clock) {
                total += 1;
                if ans == truth {
                    agree += 1;
                }
            }
        }
        assert!(total > 30, "most answers parse");
        let rate = agree as f32 / total as f32;
        // Better than chance, far from perfect — the Table 6 profile.
        assert!(rate > 0.5, "agreement {rate}");
        assert!(rate < 0.98, "agreement suspiciously perfect: {rate}");
    }

    #[test]
    fn counts_are_biased_high() {
        let v = video();
        let sim = VideoChatSim::new(MllmVariant::VideoChat7B, 9);
        let clock = Clock::new();
        let q = MllmQuestion::AvgWalkingPeople;
        let mut answers = Vec::new();
        let mut truths = Vec::new();
        for start in 0..50 {
            let clip = v.clip(start as f64, start as f64 + 1.0);
            let mut sum = 0u64;
            let mut n = 0u64;
            for f in 0..clip.frame_count() {
                sum += q.count_on(&clip.frame(f).truth);
                n += 1;
            }
            truths.push(sum as f64 / n as f64);
            if let Some(a) = sim.ask_count(&clip, &q, &clock) {
                answers.push(a);
            }
        }
        assert!(!answers.is_empty());
        let mean_ans: f64 = answers.iter().sum::<f64>() / answers.len() as f64;
        let mean_truth: f64 = truths.iter().sum::<f64>() / truths.len() as f64;
        assert!(
            mean_ans > mean_truth * 1.2,
            "answers should over-count: {mean_ans} vs truth {mean_truth}"
        );
    }

    #[test]
    fn answers_are_deterministic_per_clip() {
        let v = video();
        let sim = VideoChatSim::new(MllmVariant::VideoChat7B, 3);
        let clock = Clock::new();
        let clip = v.clip(2.0, 3.0);
        let q = MllmQuestion::CarsTurningLeft;
        assert_eq!(
            sim.ask_bool(&clip, &q, &clock),
            sim.ask_bool(&clip, &q, &clock)
        );
    }
}
